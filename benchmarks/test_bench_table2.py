"""Experiment: Table 2 — parameter values for the case p = 1.

Reproduces both columns of Table 2 over a sweep of normalised lifespans:
the optimal schedule ``S_opt^(1)`` (period count from eq. 5.1, ε, work
``U − √(2cU) − c/2``) and the guideline ``S_a^(1)`` (period count
``⌊√(2U/c)⌋ + 2``, work within low-order terms of optimal).  Closed forms
are compared against exact worst-case measurements and, where tabulated,
against the exact DP optimum.
"""

import pytest

from bench_util import save_rows
from repro.analysis import table2_rows
from repro.dp import solve

LIFESPANS = [100.0, 1_000.0, 10_000.0, 100_000.0]
SETUP_COST = 1.0


@pytest.fixture(scope="module")
def dp_values():
    table = solve(10_000, 1, 1)
    return {U: float(table.value(1, int(U))) for U in LIFESPANS if U <= 10_000}


def test_bench_table2(benchmark, dp_values):
    rows = benchmark.pedantic(table2_rows, args=(LIFESPANS, SETUP_COST),
                              kwargs={"measure": True, "dp_values": dp_values},
                              rounds=1, iterations=1)
    save_rows("table2", rows,
              columns=["lifespan", "opt_num_periods", "opt_epsilon", "opt_work_formula",
                       "opt_work_measured", "dp_optimal_work", "guideline_num_periods",
                       "guideline_work_formula", "guideline_work_measured"],
              title="Table 2: p = 1 parameters, c = 1")
    for row in rows:
        # The closed form and the measured optimum agree to O(1).
        assert row["opt_work_measured"] == pytest.approx(row["opt_work_formula"], abs=3.0)
        # The guideline S_a^(1) is within low-order terms of optimal.
        gap = row["opt_work_measured"] - row["guideline_work_measured"]
        assert gap <= row["lifespan"] ** 0.25 + 5.0
        if "dp_optimal_work" in row:
            assert row["dp_optimal_work"] == pytest.approx(row["opt_work_formula"], abs=3.0)
