"""Ablation: cost of the exact DP solver (fast vs reference).

The fast solver replaces the straightforward ``O(p·L²)`` recurrence with an
amortised ``O(p·L)`` monotone-crossing pointer (see
:mod:`repro.dp.solver`); this benchmark quantifies the difference and
checks the two stay bit-identical.
"""

import numpy as np
import pytest

from bench_util import save_rows
from repro.dp import solve_fast, solve_reference


@pytest.mark.parametrize("lifespan", [1_000, 4_000, 16_000])
def test_bench_dp_fast(benchmark, lifespan):
    table = benchmark.pedantic(solve_fast, args=(lifespan, 1, 2), rounds=1, iterations=1)
    assert table.max_lifespan == lifespan


@pytest.mark.parametrize("lifespan", [1_000, 4_000])
def test_bench_dp_reference(benchmark, lifespan):
    table = benchmark.pedantic(solve_reference, args=(lifespan, 1, 2), rounds=1, iterations=1)
    assert table.max_lifespan == lifespan


def test_bench_dp_agreement():
    fast = solve_fast(2_000, 3, 3)
    ref = solve_reference(2_000, 3, 3)
    assert np.array_equal(fast.values, ref.values)
    save_rows("dp_solver_ablation", [{
        "lifespan": 2_000, "setup_cost": 3, "max_interrupts": 3,
        "solvers_agree": True,
        "table_cells": int(fast.values.size),
    }], title="DP solver ablation: fast crossing-pointer vs reference recurrence")
