"""Experiment: Section 5.2 — near-optimality of the guidelines.

The paper's headline claim is that the guidelines are within *low-order
additive terms* of optimal.  We measure the gap ``W^(p)[U] − W(guideline)``
against the exact DP optimum across lifespans and interrupt budgets and
report it normalised by ``√(cU)`` (the scale of the leading loss terms): a
gap that stays well below 1 on that scale is exactly what "low-order" means.
"""

import pytest

from bench_util import save_rows
from repro import CycleStealingParams
from repro.analysis import optimality_gap
from repro.dp import solve
from repro.schedules import (
    EqualizingAdaptiveScheduler,
    RosenbergAdaptiveScheduler,
    RosenbergNonAdaptiveScheduler,
)

LIFESPANS = [1_000, 5_000, 20_000]
BUDGETS = [1, 2, 3]


@pytest.fixture(scope="module")
def table():
    return solve(max(LIFESPANS), 1, max(BUDGETS))


def _gap_rows(table):
    schedulers = {
        "equalizing-adaptive": EqualizingAdaptiveScheduler(),
        "rosenberg-adaptive (literal)": RosenbergAdaptiveScheduler(),
        "rosenberg-nonadaptive": RosenbergNonAdaptiveScheduler(),
    }
    rows = []
    for U in LIFESPANS:
        for p in BUDGETS:
            params = CycleStealingParams(lifespan=float(U), setup_cost=1.0,
                                         max_interrupts=p)
            for label, scheduler in schedulers.items():
                report = optimality_gap(scheduler, params, table)
                rows.append({
                    "scheduler": label,
                    "lifespan": U,
                    "max_interrupts": p,
                    "guaranteed_work": report.guaranteed_work,
                    "dp_optimal": report.optimal_work,
                    "gap": report.gap,
                    "gap_over_sqrt_cU": report.normalized_gap,
                })
    return rows


def test_bench_optimality_gap(benchmark, table):
    rows = benchmark.pedantic(_gap_rows, args=(table,), rounds=1, iterations=1)
    save_rows("optimality_gap", rows,
              title="Optimality gaps vs exact DP optimum (c = 1)")
    for row in rows:
        if row["scheduler"] == "equalizing-adaptive":
            # The equalizing guideline tracks the optimum to within a small
            # fraction of the √(cU) loss scale.
            assert row["gap_over_sqrt_cU"] <= 0.35
        if row["scheduler"] == "rosenberg-nonadaptive":
            # Non-adaptive schedules genuinely give something up for p >= 2.
            if row["max_interrupts"] >= 2:
                assert row["gap"] > 0.0
