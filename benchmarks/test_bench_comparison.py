"""Experiment: guidance comparison — who wins, by what factor, and where.

The paper's introduction motivates the guidelines against the two naive
extremes (one long period; many fixed chunks).  This benchmark quantifies
that motivation: guaranteed work of each scheduler across a sweep of
normalised lifespans, the ratio of the adaptive guideline to each baseline,
and the crossover point at which chunked schedules start beating the single
long period under a one-interrupt threat.
"""

import pytest

from bench_util import save_rows
from repro import CycleStealingParams
from repro.analysis import scheduler_comparison_sweep
from repro.reporting import crossover_point, pivot_series, ratio_summary
from repro.schedules import (
    EqualizingAdaptiveScheduler,
    EqualSplitScheduler,
    FixedPeriodScheduler,
    RosenbergNonAdaptiveScheduler,
    SinglePeriodScheduler,
)

LIFESPANS = [100.0, 300.0, 1_000.0, 3_000.0, 10_000.0, 30_000.0]
BUDGET = 2

SCHEDULERS = {
    "equalizing-adaptive": EqualizingAdaptiveScheduler(),
    "rosenberg-nonadaptive": RosenbergNonAdaptiveScheduler(),
    "fixed-period-50": FixedPeriodScheduler(period_length=50.0),
    "equal-split": EqualSplitScheduler(),
    "single-period": SinglePeriodScheduler(),
}


def _comparison_rows():
    params_list = [CycleStealingParams(lifespan=U, setup_cost=1.0, max_interrupts=BUDGET)
                   for U in LIFESPANS]
    return scheduler_comparison_sweep(SCHEDULERS, params_list)


def test_bench_scheduler_comparison(benchmark):
    rows = benchmark.pedantic(_comparison_rows, rounds=1, iterations=1)
    save_rows("scheduler_comparison", rows,
              columns=["scheduler", "lifespan", "guaranteed_work", "efficiency"],
              title=f"Guaranteed work by scheduler (c = 1, p = {BUDGET})")

    series = pivot_series(rows, x="lifespan", y="guaranteed_work", series_key="scheduler")
    summary_rows = []
    for label in SCHEDULERS:
        if label == "equalizing-adaptive":
            continue
        summary = ratio_summary(series, "equalizing-adaptive", label)
        summary_rows.append({"baseline": label, **{f"ratio_{k}": v for k, v in summary.items()}})
    save_rows("scheduler_comparison_ratios", summary_rows,
              title="Adaptive guideline / baseline guaranteed-work ratios")

    # Shape checks: the adaptive guideline wins everywhere; the naive single
    # period guarantees nothing; fixed chunks overtake the single period as
    # soon as the lifespan supports more than one chunk.
    by = {(r["scheduler"], r["lifespan"]): r["guaranteed_work"] for r in rows}
    for U in LIFESPANS:
        best = max(by[(label, U)] for label in SCHEDULERS)
        assert by[("equalizing-adaptive", U)] == pytest.approx(best, abs=1e-6)
        assert by[("single-period", U)] == 0.0
    crossover = crossover_point(series, "fixed-period-50", "single-period")
    assert crossover is not None and crossover <= LIFESPANS[1]
