"""Experiment: vectorized exact-worst-case referees vs their references.

Every gap sweep and ``repro report`` optimality row pays one exact
worst-case measurement per point: the adaptive minimax referee
(:func:`repro.core.game.guaranteed_adaptive_work`) or the non-adaptive
worst-case pattern (:func:`repro.core.work.worst_case_nonadaptive_pattern`).
This benchmark measures the vectorized kernels against the retained
reference implementations on a gap-sweep-shaped grid and records the
speedups quoted in README.md under ``benchmarks/results/referee_speedup.*``.

Agreement (<= 1e-9 relative) is asserted per row, so the table is evidence
of a free speedup, not of a different computation; the committed
``guaranteed_work`` column is re-verified by
``scripts/check_bench_regression.py``.
"""

import time

import numpy as np

from bench_util import save_rows
from repro import CycleStealingParams, EpisodeSchedule
from repro.core.game import (
    guaranteed_adaptive_work,
    guaranteed_adaptive_work_reference,
)
from repro.core.work import (
    worst_case_nonadaptive_pattern,
    worst_case_nonadaptive_pattern_reference,
)
from repro.schedules import (
    EqualizingAdaptiveScheduler,
    RosenbergAdaptiveScheduler,
)

#: (label, scheduler factory, lifespan, interrupts) — the adaptive referee
#: on a gap-sweep-shaped grid (c = 1 throughout).
ADAPTIVE_CASES = [
    ("equalizing U=5000 p=2", EqualizingAdaptiveScheduler, 5_000.0, 2),
    ("equalizing U=20000 p=2", EqualizingAdaptiveScheduler, 20_000.0, 2),
    ("equalizing U=20000 p=3", EqualizingAdaptiveScheduler, 20_000.0, 3),
    ("equalizing U=60000 p=3", EqualizingAdaptiveScheduler, 60_000.0, 3),
    ("rosenberg U=20000 p=3", RosenbergAdaptiveScheduler, 20_000.0, 3),
]

#: (label, num periods, interrupts) — the non-adaptive pattern kernel on
#: equal-period schedules (period length 3, c = 1).
NONADAPTIVE_CASES = [
    ("pattern m=5000 p=4", 5_000, 4),
    ("pattern m=20000 p=8", 20_000, 8),
]


def _rel_diff(a, b):
    return abs(a - b) / max(1.0, abs(a), abs(b))


def _time_adaptive(factory, lifespan, p):
    params = CycleStealingParams(lifespan=lifespan, setup_cost=1.0,
                                 max_interrupts=p)
    start = time.perf_counter()
    fast = guaranteed_adaptive_work(factory(), params)
    fast_seconds = time.perf_counter() - start
    start = time.perf_counter()
    reference = guaranteed_adaptive_work_reference(factory(), params)
    reference_seconds = time.perf_counter() - start
    return fast, fast_seconds, reference, reference_seconds


def _time_nonadaptive(m, p):
    schedule = EpisodeSchedule(np.full(m, 3.0))
    params = CycleStealingParams(lifespan=schedule.total_length,
                                 setup_cost=1.0, max_interrupts=p)
    start = time.perf_counter()
    _, fast = worst_case_nonadaptive_pattern(schedule, params)
    fast_seconds = time.perf_counter() - start
    start = time.perf_counter()
    _, reference = worst_case_nonadaptive_pattern_reference(schedule, params)
    reference_seconds = time.perf_counter() - start
    return fast, fast_seconds, reference, reference_seconds


def _run_all():
    rows = []
    for label, factory, lifespan, p in ADAPTIVE_CASES:
        fast, fast_s, reference, ref_s = _time_adaptive(factory, lifespan, p)
        rows.append({
            "case": label, "kernel": "adaptive-minimax",
            "lifespan": lifespan, "max_interrupts": p,
            "reference_s": round(ref_s, 4), "vectorized_s": round(fast_s, 4),
            "speedup": round(ref_s / fast_s, 1),
            "guaranteed_work": fast,
            "agree_1e9": _rel_diff(fast, reference) <= 1e-9,
        })
    for label, m, p in NONADAPTIVE_CASES:
        fast, fast_s, reference, ref_s = _time_nonadaptive(m, p)
        rows.append({
            "case": label, "kernel": "nonadaptive-pattern",
            "lifespan": 3.0 * m, "max_interrupts": p,
            "reference_s": round(ref_s, 4), "vectorized_s": round(fast_s, 4),
            "speedup": round(ref_s / fast_s, 1),
            "guaranteed_work": fast,
            "agree_1e9": _rel_diff(fast, reference) <= 1e-9,
        })
    return rows


def test_bench_referee_speedup(benchmark):
    rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    save_rows("referee_speedup", rows,
              title="Vectorized exact-worst-case referees vs references")
    assert all(row["agree_1e9"] for row in rows)
    # Every kernel must benefit; the adaptive gap-sweep cases by >= 5x
    # (asserted with slack for noisy CI machines — the committed table
    # holds the measured numbers).
    assert all(row["speedup"] >= 1.5 for row in rows)
    adaptive = [row for row in rows if row["kernel"] == "adaptive-minimax"]
    assert adaptive and max(row["speedup"] for row in adaptive) >= 5.0
