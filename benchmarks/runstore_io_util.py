"""Shared synthetic-run builder for the run-store I/O benchmark and guard.

Both ``benchmarks/test_bench_runstore_io.py`` (which generates the
committed ``benchmarks/results/runstore_io.*`` evidence) and
``scripts/check_bench_regression.py --only runstore-io`` (which re-verifies
it in CI) need the *same* deterministic run: a completed sweep-shaped run
whose rows are synthetic closed-form values, written straight into the
store without evaluating any scheduler.  Keeping the builder here — a
plain module, importable without pytest — ensures the guard re-derives
exactly the rows the benchmark committed, through both the per-shard and
the columnar-sidecar read paths.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Mapping

from repro.runstore import Run, RunStore
from repro.specs import parse_spec

#: Sizes the evidence table commits (the acceptance floor is measured on
#: the >= 64-point rows; 256 shows the gap widening with scale).
POINT_COUNTS = (64, 256)

#: Committed-speedup floor the regression guard enforces: the sidecar must
#: stay at least this many times faster than per-shard reads.
SPEEDUP_FLOOR = 5.0


def _spec_dict(num_points: int) -> Dict:
    """A sweep spec expanding to exactly ``num_points`` (= lifespans x 2 x 2)."""
    assert num_points % 4 == 0, "synthetic grids are lifespans x 2 x 2"
    lifespans = [100.0 + 10.0 * k for k in range(num_points // 4)]
    return {
        "experiment": {"name": f"runstore-io-{num_points}", "kind": "sweep",
                       "seed": 0},
        "sweep": {"lifespans": lifespans, "interrupts": [1, 2],
                  "schedulers": ["equalizing-adaptive", "single-period"],
                  "optimal": False},
    }


def synthetic_rows(num_points: int) -> List[Dict[str, object]]:
    """Deterministic closed-form result rows for the synthetic grid.

    Shaped like real sweep rows (same key columns and value types) but
    computed arithmetically, so building a 256-point run costs
    milliseconds and the regression guard can re-derive every value
    exactly on any machine.
    """
    spec = parse_spec(_spec_dict(num_points))
    rows: List[Dict[str, object]] = []
    for point in spec.to_grid().points():
        row: Dict[str, object] = point.key_columns()
        work = round(0.9 * point.lifespan - 1.7 * point.max_interrupts
                     - 0.001 * point.index, 6)
        row["guaranteed_work"] = work
        row["efficiency"] = round(work / point.lifespan, 9)
        row["episodes"] = 3 + point.index % 7
        rows.append(row)
    return rows


def build_synthetic_run(runs_dir, num_points: int) -> Run:
    """Create a completed run (shards + consolidated sidecar) under ``runs_dir``."""
    store = RunStore(runs_dir)
    run = store.create(parse_spec(_spec_dict(num_points)),
                       run_id=f"runstore-io-{num_points}")
    for index, row in enumerate(synthetic_rows(num_points)):
        run.write_point(index, row)
    run.mark_complete()  # consolidates columns.npz
    return run


def rows_digest(rows: List[Mapping[str, object]]) -> str:
    """Canonical sha256 of a row list (order-sensitive, repr-exact floats)."""
    blob = json.dumps(rows, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
