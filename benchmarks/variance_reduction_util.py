"""Shared harness for the committed variance-reduction evidence.

A fixed panel of stochastic configurations is replicated twice at equal
replication count — once with ``variance="none"`` and once with the
panel entry's variance-reduction mode — and the measured variance ratio

    ratio = Var_none(mean) / sem_mode^2
          = (std_none^2 / n) / sem_mode^2

is recorded.  Everything is deterministic given :data:`BASE_SEED`, so the
committed ``benchmarks/results/variance_reduction.*`` table can be
re-derived exactly; two consumers must agree on the panel definition:

* ``benchmarks/test_bench_variance.py`` generates the committed table and
  asserts the headline claim at generation time (at least
  :data:`MIN_ENFORCED_CONFIGS` enforced rows with ratio at or above
  :data:`VARIANCE_RATIO_FLOOR`);
* ``scripts/check_bench_regression.py --only variance-reduction``
  re-derives every committed row in-process and re-enforces the floor,
  so the evidence cannot rot silently.

The enforced rows are single-interrupt ``uniform-owner`` sweep points:
with one uniformly distributed reclaim time the harvested work is
monotone in the single underlying uniform, the regime where antithetic
pairing provably excels (the pair mean interpolates the response around
its median).  The unenforced rows document honest, more modest gains on
multi-machine scenario families, where averaging across machines dilutes
the monotone dependence.
"""

from __future__ import annotations

import os
import sys
from typing import Dict

_HERE = os.path.abspath(__file__)
_ROOT = os.path.dirname(os.path.dirname(_HERE))
_SRC = os.path.join(_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

#: Enforced rows must show at least this variance ratio (ISSUE acceptance
#: bar: >= 4x at equal replication count; the measured enforced ratios are
#: orders of magnitude above it).
VARIANCE_RATIO_FLOOR = 4.0

#: At least this many panel entries must be enforced and above the floor.
MIN_ENFORCED_CONFIGS = 2

#: Replications per measurement (same count for both modes — the ratio is
#: an equal-budget comparison, not an equal-precision one).
REPLICATIONS = 400

#: Base seed for every measurement (results are deterministic given it).
BASE_SEED = 11

#: The panel: label -> measurement definition.  ``enforce`` marks the
#: rows whose ratio the CI gate holds above :data:`VARIANCE_RATIO_FLOOR`.
CONFIGS = {
    "single-period/uniform-owner p=1": dict(
        kind="sweep", mode="antithetic", enforce=True,
        point=dict(index=0, lifespan=100.0, setup_cost=1.0,
                   max_interrupts=1, scheduler="single-period",
                   adversary="uniform-owner")),
    "equal-split/uniform-owner p=1": dict(
        kind="sweep", mode="antithetic", enforce=True,
        point=dict(index=0, lifespan=100.0, setup_cost=1.0,
                   max_interrupts=1, scheduler="equal-split",
                   adversary="uniform-owner")),
    "rosenberg-nonadaptive/uniform-owner p=1": dict(
        kind="sweep", mode="antithetic", enforce=True,
        point=dict(index=0, lifespan=100.0, setup_cost=1.0,
                   max_interrupts=1, scheduler="rosenberg-nonadaptive",
                   adversary="uniform-owner")),
    "laptop/equalizing-adaptive": dict(
        kind="scenario", mode="antithetic", enforce=False,
        family="laptop", scheduler="equalizing-adaptive", params={}),
    "desktops/equalizing-adaptive": dict(
        kind="scenario", mode="stratified", enforce=False,
        family="desktops", scheduler="equalizing-adaptive", params={}),
}


def _replicate(config: dict, variance: str) -> Dict[str, float]:
    if config["kind"] == "sweep":
        from repro.experiments import SweepPoint, replicate_point

        return replicate_point(SweepPoint(**config["point"]), REPLICATIONS,
                               base_seed=BASE_SEED, backend="batch",
                               variance=variance)
    from repro.experiments import replicate_scenario
    from repro.experiments.grid import make_scheduler
    from repro.registry import SCENARIO_FAMILIES

    family = SCENARIO_FAMILIES[config["family"]]
    probe = family(**config["params"])
    scheduler = make_scheduler(config["scheduler"], probe.params)
    return replicate_scenario(family, REPLICATIONS, base_seed=BASE_SEED,
                              scheduler=scheduler, backend="batch",
                              variance=variance, **config["params"])


def measure_config(label: str) -> Dict[str, object]:
    """One committed evidence row: both modes replicated, ratio derived."""
    config = CONFIGS[label]
    none = _replicate(config, "none")
    reduced = _replicate(config, config["mode"])
    sem_none = none["work_std"] / REPLICATIONS ** 0.5
    sem_mode = float(reduced["work_sem"])
    ratio = (sem_none ** 2) / (sem_mode ** 2) if sem_mode > 0 else float("inf")
    return {
        "config": label,
        "mode": config["mode"],
        "replications": REPLICATIONS,
        "work_mean_none": float(none["work_mean"]),
        "work_mean_reduced": float(reduced["work_mean"]),
        "sem_none": float(sem_none),
        "sem_reduced": sem_mode,
        "variance_ratio": float(ratio),
        "enforced": "yes" if config["enforce"] else "no",
    }
