"""Experiment: columnar sidecar vs per-shard reads of the run store.

``repro report`` used to re-open every ``points/point-NNNN.npz`` shard on
every render (``--profile`` put shard I/O at ~13% of a parallel analytic
run).  The run store now consolidates completed shards into a single
``columns.npz`` sidecar read in one pass; this benchmark measures both
read paths on synthetic completed runs (64 and 256 points) and commits
the evidence under ``benchmarks/results/runstore_io.*``.

The timing columns are machine-dependent; the deterministic columns
(point/column counts and the canonical digest of the reconstructed rows)
are re-verified through *both* read paths by
``scripts/check_bench_regression.py --only runstore-io``, which also
enforces the committed speedup floor.
"""

import time

from bench_util import save_rows
from repro.runstore import Run
from runstore_io_util import (
    POINT_COUNTS,
    SPEEDUP_FLOOR,
    build_synthetic_run,
    rows_digest,
    synthetic_rows,
)

#: Timing repetitions per path (best-of, to shed scheduler noise).
ROUNDS = 5


def _best_of(func, rounds: int = ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - started)
    return best


def _measure(tmp_path, num_points: int):
    run = build_synthetic_run(tmp_path / f"runs-{num_points}", num_points)
    via_shards = run.rows(source="shards")
    via_sidecar = run.rows(source="sidecar")
    assert via_shards == via_sidecar == synthetic_rows(num_points)
    # A fresh Run handle per timed read keeps the comparison cold-vs-cold:
    # the handle memoises the parsed sidecar, so reusing one would time
    # the in-memory memo (~100x faster again) instead of the file read.
    shard_seconds = _best_of(lambda: Run(run.root).rows(source="shards"))
    sidecar_seconds = _best_of(lambda: Run(run.root).rows(source="sidecar"))
    return {
        "points": num_points,
        "columns": len(via_sidecar[0]),
        "shard_read_ms": round(shard_seconds * 1e3, 3),
        "sidecar_read_ms": round(sidecar_seconds * 1e3, 3),
        "speedup": round(shard_seconds / sidecar_seconds, 1),
        "rows_sha256": rows_digest(via_sidecar)[:16],
    }


def test_bench_runstore_io(benchmark, tmp_path):
    rows = benchmark.pedantic(
        lambda: [_measure(tmp_path, n) for n in POINT_COUNTS],
        rounds=1, iterations=1)
    save_rows("runstore_io", rows,
              title="Run-store reads: columnar sidecar vs per-shard .npz")
    for row in rows:
        assert row["speedup"] >= SPEEDUP_FLOOR, (
            f"sidecar read only {row['speedup']}x faster than per-shard at "
            f"{row['points']} points (floor {SPEEDUP_FLOOR}x)")
    # The digest must not depend on the read path *or* the point count
    # ordering — each row's digest is recomputed by the CI guard.
    assert len({row["rows_sha256"] for row in rows}) == len(rows)
