"""Experiment: streaming vs exact Monte-Carlo aggregation at scale.

Measures the canonical high-replication sweep point (see
``mc_streaming_util``) through both aggregation pipelines — the historical
exact one-shot aggregation and the chunked streaming accumulators — and
records wall-clock, throughput and **peak RSS per replication count**
under ``benchmarks/results/mc_streaming.*``.  Every measurement runs in a
fresh subprocess so ``ru_maxrss`` is a clean per-run peak.

The committed table is the ISSUE's memory evidence: the 10^6-replication
streaming run completes with peak RSS within ``RSS_RATIO_FLOOR`` (1.5x)
of the 10^4-replication run, asserted here at generation time and
re-enforced on the committed CSV by ``scripts/check_bench_regression.py
--only mc-streaming`` and live by ``scripts/check_mc_memory.py`` in CI.
Streaming mean/std must also agree with exact aggregation to 1e-9 at the
counts where both run — the table is evidence of flat memory, not of a
different computation.
"""

from bench_util import save_rows
from mc_streaming_util import RSS_RATIO_FLOOR, measure_subprocess

#: Counts measured under BOTH aggregations (exact materialises
#: per-replication arrays at these sizes without stressing CI memory).
BOTH_COUNTS = [10_000, 100_000]

#: Counts measured streaming-only — the flat-memory regime the exact path
#: cannot reach without linear growth.
STREAMING_ONLY_COUNTS = [1_000_000]

PARITY_TOLERANCE = 1e-9


def _run_all():
    rows = []
    by_key = {}
    for count in BOTH_COUNTS:
        for aggregation in ("exact", "streaming"):
            result = measure_subprocess(count, aggregation)
            by_key[(aggregation, count)] = result
            rows.append(result)
    for count in STREAMING_ONLY_COUNTS:
        result = measure_subprocess(count, "streaming")
        by_key[("streaming", count)] = result
        rows.append(result)
    for row in rows:
        row["reps_per_s"] = round(row["replications"] / row["seconds"], 0)
        row["seconds"] = round(row["seconds"], 2)
        row["rss_mib"] = round(row["rss_mib"], 1)
    return rows, by_key


def test_bench_mc_streaming(benchmark):
    rows, by_key = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    save_rows("mc_streaming", rows,
              columns=["aggregation", "replications", "chunk_size",
                       "seconds", "reps_per_s", "rss_mib", "work_mean",
                       "work_std", "work_q50", "quantile_method"],
              title="Streaming vs exact Monte-Carlo aggregation "
                    "(peak RSS per fresh subprocess)")

    # Parity: streaming mean/std agree with exact at every shared count.
    for count in BOTH_COUNTS:
        exact = by_key[("exact", count)]
        streaming = by_key[("streaming", count)]
        for column in ("work_mean", "work_std"):
            drift = (abs(exact[column] - streaming[column])
                     / max(1.0, abs(exact[column])))
            assert drift <= PARITY_TOLERANCE, (count, column, drift)
        assert exact["quantile_method"] == "exact"
        assert streaming["quantile_method"] == "p2"

    # Memory evidence: the million-replication streaming run completed and
    # peaked within the documented envelope of the 10^4-replication run.
    small = by_key[("streaming", 10_000)]
    million = by_key[("streaming", 1_000_000)]
    ratio = million["rss_mib"] / small["rss_mib"]
    assert ratio <= RSS_RATIO_FLOOR, (
        f"streaming peak RSS grew {ratio:.2f}x from 10^4 to 10^6 "
        f"replications (envelope {RSS_RATIO_FLOOR:g}x)")
