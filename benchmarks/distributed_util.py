"""Shared measurement harness for the distributed-sweep benchmark and guard.

Both ``benchmarks/test_bench_distributed.py`` (which generates the
committed ``benchmarks/results/distributed_sweep.*`` evidence) and
``scripts/check_bench_regression.py --only distributed-sweep`` (which
re-verifies it in CI) need the *same* cluster workloads:

* a **scaling** sweep whose points each carry a known fixed cost (the
  ``REPRO_TEST_POINT_DELAY`` hook sleeps before evaluation), so point
  throughput scales with worker *processes* even on a single core and
  the committed speedup measures the executor, not the machine;
* a **table-service** sweep with DP optima enabled, whose distinct
  ``(L, c, p)`` key count is re-derivable from the spec — the committed
  ``dp_solves`` must equal it exactly (one solve per key cluster-wide,
  however many workers race).
"""

from __future__ import annotations

import os
import time
from typing import Dict

from repro.distributed import run_spec_distributed
from repro.experiments.orchestrator import shared_table_keys
from repro.specs import expand_payloads, parse_spec, payload_config

#: Worker counts the scaling table commits (process-level parallelism).
WORKER_COUNTS = (1, 2, 4)

#: Fixed per-point cost injected through ``REPRO_TEST_POINT_DELAY``.
POINT_DELAY_S = 0.15

#: Committed-speedup floor the regression guard enforces at 2 workers:
#: the cluster must push at least this many times the single-worker
#: point throughput (the acceptance bar of the distributed executor).
SPEEDUP_FLOOR = 1.7

#: 48 fixed-cost points; no DP tables, so the scaling rows time the
#: lease/stream machinery plus pure (sleep-padded) evaluation.
SCALING_SPEC = {
    "experiment": {"name": "dist-scaling", "kind": "sweep", "seed": 0,
                   "replications": 0},
    "sweep": {"lifespans": [100.0 + 10.0 * k for k in range(12)],
              "interrupts": [1, 2],
              "schedulers": ["equalizing-adaptive", "single-period"],
              "optimal": False},
}

#: 8 points over 4 distinct DP table keys (2 lifespans x 2 setup costs,
#: one interrupt budget); every key is needed by both schedulers, so
#: workers genuinely race for the same tables.
TABLE_SPEC = {
    "experiment": {"name": "dist-tables", "kind": "sweep", "seed": 0,
                   "replications": 0},
    "sweep": {"lifespans": [200.0, 300.0], "setup_costs": [1.0, 2.0],
              "interrupts": [2],
              "schedulers": ["equalizing-adaptive", "rosenberg-nonadaptive"],
              "optimal": True},
}


def expected_table_keys() -> int:
    """Distinct ``(L, c, p)`` DP keys of :data:`TABLE_SPEC`, re-derived.

    Uses the same expansion the workers themselves use, so the guard's
    notion of "how many solves a perfect cluster needs" can never drift
    from the executor's.
    """
    spec = parse_spec(TABLE_SPEC)
    config = payload_config(spec)
    points = [point for point, _config in expand_payloads(spec)]
    return len(shared_table_keys(points, config))


def measure_scaling(runs_dir, workers: int,
                    delay_s: float = POINT_DELAY_S) -> Dict[str, object]:
    """One committed scaling row: wall-clock a fixed-cost cluster sweep."""
    spec = parse_spec(SCALING_SPEC)
    metrics: Dict[str, object] = {}
    os.environ["REPRO_TEST_POINT_DELAY"] = str(delay_s)
    try:
        started = time.perf_counter()
        run = run_spec_distributed(
            spec, runs_dir=os.path.join(os.fspath(runs_dir), f"w{workers}"),
            workers=workers, timeout=600.0, metrics_out=metrics)
        elapsed = time.perf_counter() - started
    finally:
        del os.environ["REPRO_TEST_POINT_DELAY"]
    points = metrics["points"]["done"]
    assert run.status == "complete" and points == spec.num_points()
    return {
        "kind": "scaling",
        "workers": workers,
        "points": points,
        "point_cost_s": delay_s,
        "elapsed_s": round(elapsed, 3),
        "points_per_s": round(points / elapsed, 3),
        "speedup": 0.0,  # filled against the 1-worker row by the caller
        "dp_solves": metrics["table_service"]["dp_solves"],
        "distinct_table_keys": 0,
        "table_requests": metrics["table_service"]["requests"],
        "shard_bytes_streamed": metrics["shards"]["bytes_streamed"],
    }


def measure_table_service(runs_dir, workers: int = 2) -> Dict[str, object]:
    """The committed table-service row: DP solves vs distinct keys."""
    spec = parse_spec(TABLE_SPEC)
    metrics: Dict[str, object] = {}
    started = time.perf_counter()
    run = run_spec_distributed(
        spec, runs_dir=os.path.join(os.fspath(runs_dir), "tables"),
        workers=workers, timeout=600.0, metrics_out=metrics)
    elapsed = time.perf_counter() - started
    points = metrics["points"]["done"]
    assert run.status == "complete" and points == spec.num_points()
    return {
        "kind": "table-service",
        "workers": workers,
        "points": points,
        "point_cost_s": 0.0,
        "elapsed_s": round(elapsed, 3),
        "points_per_s": round(points / elapsed, 3),
        "speedup": 0.0,
        "dp_solves": metrics["table_service"]["dp_solves"],
        "distinct_table_keys": expected_table_keys(),
        "table_requests": metrics["table_service"]["requests"],
        "shard_bytes_streamed": metrics["shards"]["bytes_streamed"],
    }
