"""Experiment: Proposition 4.1 — the structure of W^(p)[U].

Tabulates the exact optimal guaranteed work over a grid of lifespans and
interrupt budgets (the "figure" a full version of the paper would plot):
monotone in U, antitone in p, zero up to the (p+1)c threshold, and with a
loss ``U − W^(p)[U]`` that grows like ``√U`` with a p-dependent coefficient
approaching 2√2 ≈ 2.83 on the √(2cU) scale.
"""

import math

import pytest

from bench_util import save_rows
from repro.dp import solve

SETUP_COST = 4
LIFESPANS = [50, 200, 1_000, 5_000, 20_000]
BUDGETS = [0, 1, 2, 3, 4]


@pytest.fixture(scope="module")
def table():
    return solve(max(LIFESPANS), SETUP_COST, max(BUDGETS))


def _structure_rows(table):
    rows = []
    for U in LIFESPANS:
        row = {"lifespan": U, "setup_cost": SETUP_COST}
        for p in BUDGETS:
            value = table.value(p, U)
            row[f"W_p{p}"] = value
            scale = math.sqrt(2.0 * SETUP_COST * U)
            row[f"loss_coeff_p{p}"] = (U - value) / scale
        rows.append(row)
    return rows


def test_bench_structure(benchmark, table):
    rows = benchmark.pedantic(_structure_rows, args=(table,), rounds=1, iterations=1)
    save_rows("structure_prop41", rows,
              title=f"W^(p)[U] structure (c = {SETUP_COST})")
    for row in rows:
        # Antitone in p at every tabulated lifespan.
        values = [row[f"W_p{p}"] for p in BUDGETS]
        assert all(a >= b for a, b in zip(values, values[1:]))
    # Threshold behaviour: below (p+1)c nothing can be guaranteed.
    for p in BUDGETS:
        assert table.value(p, (p + 1) * SETUP_COST) == 0
    # The loss coefficient saturates well below 2·√2 for large U.
    big = rows[-1]
    for p in BUDGETS[1:]:
        assert big[f"loss_coeff_p{p}"] <= 2.83


def test_bench_value_queries(benchmark, table):
    """Micro-benchmark: value-table lookups used throughout the analysis."""
    def many_queries():
        total = 0.0
        for U in range(100, 20_000, 197):
            for p in BUDGETS:
                total += table.value(p, U)
        return total

    total = benchmark(many_queries)
    assert total > 0.0
