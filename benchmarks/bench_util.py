"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or analytic claims.
Besides timing the underlying computation with pytest-benchmark, each
benchmark renders the reproduced rows as an ASCII table and saves it under
``benchmarks/results/`` so the numbers quoted in EXPERIMENTS.md can be
regenerated with a single ``pytest benchmarks/ --benchmark-only`` run.
"""

from __future__ import annotations

import os
from typing import Mapping, Optional, Sequence

from repro.reporting import render_table, write_csv

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


def save_rows(name: str, rows: Sequence[Mapping[str, object]],
              columns: Optional[Sequence[str]] = None, title: Optional[str] = None) -> str:
    """Render rows, print them, and persist them under ``benchmarks/results``."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = render_table(rows, columns=columns, title=title or name)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(text + "\n")
    write_csv(os.path.join(RESULTS_DIR, f"{name}.csv"), rows, columns)
    print("\n" + text)
    return text
