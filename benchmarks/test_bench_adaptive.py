"""Experiment: Theorem 5.1 — the adaptive guideline's guarantee.

Sweeps the adaptive guidelines over lifespans and interrupt budgets,
measures their exact worst-case work (memoised minimax against every
period-end interrupt) and compares with the Theorem 5.1 leading-order bound
``U − (2 − 2^{1−p})·√(2cU)``.  Both the equalising construction
(Theorem 4.3, the paper's methodology) and the literal printed ``S_a^(p)``
are measured.
"""

import pytest

from bench_util import save_rows
from repro.analysis import adaptive_guarantee_sweep, bounds
from repro.schedules import EqualizingAdaptiveScheduler, RosenbergAdaptiveScheduler

LIFESPANS = [1_000.0, 10_000.0, 100_000.0]
BUDGETS = [1, 2, 3, 4]


def _decorated(rows, label):
    for row in rows:
        row["scheduler"] = label
        loss = row["lifespan"] - row["measured_work"]
        scale = (2.0 * row["setup_cost"] * row["lifespan"]) ** 0.5
        row["measured_loss_coefficient"] = loss / scale
    return rows


def test_bench_adaptive_equalizing(benchmark):
    rows = benchmark.pedantic(
        adaptive_guarantee_sweep, args=(LIFESPANS, 1.0, BUDGETS),
        kwargs={"scheduler": EqualizingAdaptiveScheduler()}, rounds=1, iterations=1)
    rows = _decorated(rows, "equalizing")
    save_rows("adaptive_theorem51_equalizing", rows,
              columns=["lifespan", "max_interrupts", "num_periods", "measured_work",
                       "theorem51_bound", "loss_coefficient", "measured_loss_coefficient"],
              title="Theorem 5.1: equalizing adaptive guideline, c = 1")
    for row in rows:
        # Loss is Θ(√(cU)) with a coefficient bounded by ~2.6 (the theorem's
        # leading coefficient approaches 2; the excess is the low-order term).
        assert row["measured_loss_coefficient"] <= 2.6
        # Guarantee improves with fewer interrupts.
        assert row["measured_work"] <= row["lifespan"] - 1.0


def test_bench_adaptive_literal(benchmark):
    rows = benchmark.pedantic(
        adaptive_guarantee_sweep, args=(LIFESPANS, 1.0, BUDGETS),
        kwargs={"scheduler": RosenbergAdaptiveScheduler()}, rounds=1, iterations=1)
    rows = _decorated(rows, "literal")
    save_rows("adaptive_theorem51_literal", rows,
              columns=["lifespan", "max_interrupts", "num_periods", "measured_work",
                       "theorem51_bound", "loss_coefficient", "measured_loss_coefficient"],
              title="Theorem 5.1: literal S_a^(p) (as printed), c = 1")
    for row in rows:
        if row["max_interrupts"] == 1:
            # For p = 1 the printed schedule is near-optimal.
            assert row["measured_loss_coefficient"] <= 1.2
