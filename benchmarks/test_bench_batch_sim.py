"""Experiment: batch (vectorized) vs event-driven replication backends.

Measures the wall-clock of replicating Monte-Carlo points through both
backends — the event engine one replication at a time, and the batch
backend of :mod:`repro.simulator.batch` / the level-synchronous game of
:mod:`repro.experiments.montecarlo` in one array pass — on 1000-replication
(and smaller multi-workstation) points, and records the speedups quoted in
README.md under ``benchmarks/results/batch_sim_speedup.*``.

Both backends are driven on identical replication sets (same seeds), and
the equality of their results is asserted here as well, so the table is
evidence of a free speedup, not of a different computation.
"""

import time

import pytest

from bench_util import save_rows
from repro.experiments import SweepPoint, replicate_point
from repro.experiments.grid import point_seed
from repro.schedules import EqualizingAdaptiveScheduler
from repro.simulator import CycleStealingSimulation, simulate_scenarios_batch
from repro.workloads import (
    flaky_owners,
    laptop_evening,
    overnight_desktops,
    shared_lab,
)

#: (label, scenario family, replications)
SCENARIO_CASES = [
    ("laptop-evening", laptop_evening, 1000),
    ("overnight-desktops", overnight_desktops, 200),
    ("shared-lab", shared_lab, 200),
    ("flaky-owners", flaky_owners, 1000),
]

#: (label, lifespan, interrupt budget, replications) — game-level points.
POINT_CASES = [
    ("sweep-point U=800 p=2", 800.0, 2, 1000),
    ("sweep-point U=5000 p=2", 5000.0, 2, 1000),
]


def _time_scenario_case(family, replications):
    """Best-of-two timing per backend (the first pass pays allocator and
    page-fault warm-up that steady-state sweeps never see); equality is
    checked on the first pass's reports."""
    make = lambda: [family(seed=point_seed(0, family.__name__, r))  # noqa: E731
                    for r in range(replications)]
    event_seconds = float("inf")
    for _attempt in range(2):
        scenarios = make()
        scheduler = EqualizingAdaptiveScheduler()
        start = time.perf_counter()
        event_reports = [CycleStealingSimulation(s.workstations, scheduler,
                                                 task_bag=s.task_bag).run()
                         for s in scenarios]
        event_seconds = min(event_seconds, time.perf_counter() - start)

    batch_seconds = float("inf")
    for _attempt in range(2):
        scenarios = make()      # fresh task bags for the batch run
        scheduler = EqualizingAdaptiveScheduler()
        start = time.perf_counter()
        batch_reports = simulate_scenarios_batch(scenarios, scheduler)
        batch_seconds = min(batch_seconds, time.perf_counter() - start)

    identical = all(
        a.total_work == b.total_work
        and a.total_interrupts == b.total_interrupts
        and a.total_tasks_completed == b.total_tasks_completed
        for a, b in zip(event_reports, batch_reports))
    return event_seconds, batch_seconds, identical


def _time_point_case(lifespan, budget, replications):
    point = SweepPoint(index=1, lifespan=lifespan, setup_cost=1.0,
                       max_interrupts=budget,
                       scheduler="equalizing-adaptive",
                       adversary="poisson-owner")
    start = time.perf_counter()
    event_row = replicate_point(point, replications, base_seed=0,
                                backend="event")
    event_seconds = time.perf_counter() - start
    start = time.perf_counter()
    batch_row = replicate_point(point, replications, base_seed=0,
                                backend="batch")
    batch_seconds = time.perf_counter() - start
    close = all(
        event_row[k] == batch_row[k] if isinstance(event_row[k], str)
        else abs(event_row[k] - batch_row[k]) <= 1e-9 * max(1.0, abs(event_row[k]))
        for k in event_row)
    return event_seconds, batch_seconds, close


def _run_all():
    rows = []
    for label, family, replications in SCENARIO_CASES:
        event_s, batch_s, ok = _time_scenario_case(family, replications)
        rows.append({
            "case": label, "replications": replications,
            "event_s": round(event_s, 3), "batch_s": round(batch_s, 3),
            "speedup": round(event_s / batch_s, 1),
            "event_ms_per_rep": round(1000.0 * event_s / replications, 3),
            "batch_ms_per_rep": round(1000.0 * batch_s / replications, 3),
            "results_equal": ok,
        })
    for label, lifespan, budget, replications in POINT_CASES:
        event_s, batch_s, ok = _time_point_case(lifespan, budget, replications)
        rows.append({
            "case": label, "replications": replications,
            "event_s": round(event_s, 3), "batch_s": round(batch_s, 3),
            "speedup": round(event_s / batch_s, 1),
            "event_ms_per_rep": round(1000.0 * event_s / replications, 3),
            "batch_ms_per_rep": round(1000.0 * batch_s / replications, 3),
            "results_equal": ok,
        })
    return rows


def test_bench_batch_sim_speedup(benchmark):
    rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    save_rows("batch_sim_speedup", rows,
              title="Batch vs event-driven replication backend")
    assert all(row["results_equal"] for row in rows)
    # Every case must benefit; the headline 1000-replication cases by >= ~10x
    # and the flaky-owners family (the old fallback hotspot, now handled
    # natively in-array) by >= ~8x (asserted with slack for noisy CI
    # machines — the committed table holds the measured numbers).
    assert all(row["speedup"] >= 1.5 for row in rows)
    headline = [row for row in rows if row["replications"] >= 1000]
    assert headline and max(row["speedup"] for row in headline) >= 5.0
    (flaky,) = [row for row in rows if row["case"] == "flaky-owners"]
    assert flaky["speedup"] >= 4.0
