"""Experiment: shared-memory DP tables — worker memory independent of jobs.

Before the shared-memory level, every worker process of a parallel sweep
materialised its own private copy of each solved ``W^(p)[L]`` table (by
re-solving, or by ``np.load`` from the disk cache), so resident memory for
the nightly 60k-lifespan tables grew linearly with ``--jobs``.  With
:class:`repro.experiments.cache.SharedTablePublisher` the driver publishes
one copy per machine and workers attach by name, zero-copy.

This benchmark spawns real worker processes at several ``--jobs`` levels,
has each worker materialise the 60k table both ways, and records each
worker's **private-dirty** memory delta (``/proc/self/smaps_rollup`` —
pages this process alone dirtied; shared mappings do not count).  The
committed table under ``benchmarks/results/shared_dp_memory.*`` is the
evidence that per-worker and fleet-total private memory stay flat under
the shared path while the copy path scales with the job count.
"""

import os
import tempfile
from concurrent.futures import ProcessPoolExecutor

import pytest

from bench_util import save_rows
from repro.experiments import DPTableCache
from repro.experiments.cache import SharedTablePublisher, attach_shared_table

#: The nightly-scale table: L = 60k, c = 1, p = 4 (~4.8 MB of int64).
TABLE_KEY = (60_000, 1, 4)

JOB_COUNTS = (1, 2, 4)


def _private_dirty_kb():
    """This process's private-dirty pages in kB (None off-Linux)."""
    try:
        with open("/proc/self/smaps_rollup") as handle:
            for line in handle:
                if line.startswith("Private_Dirty:"):
                    return int(line.split()[1])
    except OSError:
        return None
    return None


def _measure_copy(cache_dir):
    """Worker: load a private table copy from the disk cache level."""
    before = _private_dirty_kb()
    table = DPTableCache(cache_dir=cache_dir).solve(*TABLE_KEY)
    checksum = int(table.values[-1, -1]) + int(table.first_periods[-1, -1])
    after = _private_dirty_kb()
    return after - before, checksum


def _measure_shared(handle):
    """Worker: attach the machine-wide shared copy (zero-copy)."""
    before = _private_dirty_kb()
    table = attach_shared_table(handle)
    checksum = int(table.values[-1, -1]) + int(table.first_periods[-1, -1])
    after = _private_dirty_kb()
    return after - before, checksum


def _fan_out(jobs, func, arg):
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(func, [arg] * jobs))


def _run_all():
    rows = []
    table_mb = 2 * (TABLE_KEY[0] + 1) * (TABLE_KEY[2] + 1) * 8 / 1e6
    with tempfile.TemporaryDirectory() as cache_dir:
        driver_cache = DPTableCache(cache_dir=cache_dir)
        table = driver_cache.solve(*TABLE_KEY)  # warm the disk level once
        expected = int(table.values[-1, -1]) + int(table.first_periods[-1, -1])
        with SharedTablePublisher() as publisher:
            handle = publisher.publish(table)
            for jobs in JOB_COUNTS:
                for mode, func, arg in (("per-worker copy", _measure_copy,
                                         cache_dir),
                                        ("shared-memory attach",
                                         _measure_shared, handle)):
                    results = _fan_out(jobs, func, arg)
                    assert all(c == expected for _d, c in results)
                    deltas_mb = [d / 1e3 for d, _c in results]
                    rows.append({
                        "mode": mode, "jobs": jobs,
                        "table_mb": round(table_mb, 1),
                        "worker_private_mb": round(max(deltas_mb), 1),
                        "fleet_private_mb": round(sum(deltas_mb), 1),
                    })
    return rows


@pytest.mark.skipif(_private_dirty_kb() is None,
                    reason="needs /proc/self/smaps_rollup (Linux)")
def test_bench_shared_dp_memory(benchmark):
    rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    save_rows("shared_dp_memory", rows,
              title="Per-worker private memory for a 60k-lifespan DP table")
    table_mb = rows[0]["table_mb"]
    copy = {r["jobs"]: r for r in rows if r["mode"] == "per-worker copy"}
    shared = {r["jobs"]: r for r in rows if r["mode"] == "shared-memory attach"}
    # Copy mode: every worker dirties (at least) its own table copy, so the
    # fleet total scales with jobs.
    assert all(r["worker_private_mb"] >= 0.5 * table_mb for r in copy.values())
    assert copy[max(JOB_COUNTS)]["fleet_private_mb"] >= \
        0.8 * table_mb * max(JOB_COUNTS)
    # Shared mode: attaching dirties a few bookkeeping pages at most, and
    # per-worker usage does not grow with the job count.
    assert all(r["worker_private_mb"] <= 0.2 * table_mb
               for r in shared.values())
    assert shared[max(JOB_COUNTS)]["worker_private_mb"] <= \
        shared[min(JOB_COUNTS)]["worker_private_mb"] + 0.2 * table_mb
