"""Shared harness for the streaming Monte-Carlo memory/throughput evidence.

One canonical high-replication sweep point is measured by three consumers,
which must agree on its definition for the committed evidence to be
re-derivable:

* ``benchmarks/test_bench_mc_streaming.py`` generates the committed
  ``benchmarks/results/mc_streaming.*`` table (seconds, peak RSS and the
  deterministic work statistics per replication count and aggregation
  mode);
* ``scripts/check_mc_memory.py`` is the CI memory-flatness gate (peak RSS
  of a streaming run must stay within :data:`RSS_RATIO_FLOOR` of a run
  100x smaller);
* ``scripts/check_bench_regression.py --only mc-streaming`` re-derives the
  committed deterministic columns and enforces the committed RSS-ratio
  evidence without re-running the expensive counts.

Peak memory is measured as ``ru_maxrss`` of a **fresh subprocess per
measurement** (:func:`measure_subprocess`): ``ru_maxrss`` is a process
lifetime high-water mark, so measuring two counts in one process would let
the first run's peak mask the second's.  No third-party memory profiler is
involved — ``resource`` is stdlib.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from typing import Dict, Optional

_HERE = os.path.abspath(__file__)
_ROOT = os.path.dirname(os.path.dirname(_HERE))
_SRC = os.path.join(_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

#: The committed evidence must show the million-replication streaming run
#: peaking within this factor of the 10^4-replication run (ISSUE/ROADMAP
#: acceptance bar; the measured ratio is ~1.1).
RSS_RATIO_FLOOR = 1.5

#: Fixed streaming chunk for all measurements.  The auto-sized chunk grows
#: with the replication count (to amortise schedule sharing), which would
#: conflate chunk-size footprint with replication-count footprint; pinning
#: one chunk size makes the RSS envelope measure exactly the claim —
#: peak memory flat in ``--replications``.
CHUNK_SIZE = 4096

#: Base seed for every measurement (results are deterministic given it).
BASE_SEED = 0

#: The canonical point: a mid-size adaptive sweep point on the vectorized
#: batch backend — the configuration million-replication production sweeps
#: actually use.
POINT_KWARGS = dict(index=1, lifespan=400.0, setup_cost=1.0,
                    max_interrupts=2, scheduler="equalizing-adaptive",
                    adversary="poisson-owner")


def canonical_point():
    from repro.experiments import SweepPoint

    return SweepPoint(**POINT_KWARGS)


def replicate_stats(count: int, aggregation: str,
                    chunk_size: Optional[int] = CHUNK_SIZE) -> Dict[str, float]:
    """Replicate the canonical point in-process; returns the aggregate row."""
    from repro.experiments import replicate_point

    return replicate_point(canonical_point(), count, base_seed=BASE_SEED,
                           backend="batch", aggregation=aggregation,
                           chunk_size=chunk_size)


def measure_inprocess(count: int, aggregation: str,
                      chunk_size: Optional[int] = CHUNK_SIZE) -> Dict[str, float]:
    """One measurement in THIS process: seconds, peak RSS and work stats."""
    import resource
    import time

    start = time.perf_counter()
    row = replicate_stats(count, aggregation, chunk_size)
    seconds = time.perf_counter() - start
    rss_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return {
        "aggregation": aggregation,
        "replications": int(count),
        "chunk_size": int(chunk_size) if chunk_size is not None else 0,
        "seconds": float(seconds),
        "rss_mib": rss_kib / 1024.0,
        "work_mean": float(row["work_mean"]),
        "work_std": float(row["work_std"]),
        "work_q50": float(row["work_q50"]),
        "quantile_method": str(row["quantile_method"]),
    }


def measure_subprocess(count: int, aggregation: str,
                       chunk_size: Optional[int] = CHUNK_SIZE,
                       timeout: float = 900.0) -> Dict[str, float]:
    """One measurement in a fresh subprocess (clean ``ru_maxrss``)."""
    argv = [sys.executable, _HERE, "--count", str(int(count)),
            "--aggregation", aggregation]
    if chunk_size is not None:
        argv += ["--chunk-size", str(int(chunk_size))]
    proc = subprocess.run(argv, capture_output=True, text=True,
                          timeout=timeout)
    if proc.returncode != 0:
        raise RuntimeError(
            f"measurement subprocess failed (count={count}, "
            f"aggregation={aggregation!r}):\n{proc.stderr}")
    return json.loads(proc.stdout)


def _main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="worker: measure one replication count, print JSON")
    parser.add_argument("--count", type=int, required=True)
    parser.add_argument("--aggregation", default="streaming",
                        choices=["exact", "streaming", "auto"])
    parser.add_argument("--chunk-size", type=int, default=CHUNK_SIZE)
    args = parser.parse_args(argv)
    print(json.dumps(measure_inprocess(args.count, args.aggregation,
                                       args.chunk_size)))
    return 0


if __name__ == "__main__":
    sys.exit(_main())
