"""Experiment: Table 1 — "The consequences of the adversary's options".

For the adaptive guideline's first episode-schedule we tabulate, for every
adversary option (no interrupt, interrupt period k at its last instant), the
episode work output, the residual lifespan and the opportunity work
production, exactly as Table 1 of the paper lays them out symbolically.
The continuation term ``W^(p−1)[U − T_k]`` is evaluated both with the
closed-form approximation and with the exact DP oracle.
"""

import pytest

from bench_util import save_rows
from repro import CycleStealingParams
from repro.analysis import table1_rows
from repro.dp import solve
from repro.schedules import EqualizingAdaptiveScheduler

PARAMS = CycleStealingParams(lifespan=200.0, setup_cost=2.0, max_interrupts=2)


@pytest.fixture(scope="module")
def schedule():
    return EqualizingAdaptiveScheduler().episode_schedule(
        PARAMS.lifespan, PARAMS.max_interrupts, PARAMS.setup_cost)


def test_bench_table1_closed_form(benchmark, schedule):
    rows = benchmark(table1_rows, schedule, PARAMS)
    assert len(rows) == schedule.num_periods + 1
    # Thin the table for readability: keep the no-interrupt row, the first
    # few options, one mid option, and the final ones.
    keep = [0, 1, 2, 3, len(rows) // 2, len(rows) - 2, len(rows) - 1]
    shown = [rows[i] for i in sorted(set(keep))]
    save_rows("table1_closed_form", shown,
              columns=["option", "episode_work", "residual_lifespan", "opportunity_work"],
              title="Table 1 (closed-form continuation), U=200, c=2, p=2")


def test_bench_table1_dp_oracle(benchmark, schedule):
    table = solve(200, 2, 2)
    oracle = table.as_oracle()
    rows = benchmark(table1_rows, schedule, PARAMS, oracle)
    # The equalising schedule should make the adversary's interrupt options
    # nearly indifferent (that is the Theorem 4.3 design goal): the spread of
    # opportunity work across interrupt options is small compared with U.
    interrupt_rows = rows[1:]
    values = [r["opportunity_work"] for r in interrupt_rows]
    assert max(values) - min(values) <= 0.15 * PARAMS.lifespan
    keep = [0, 1, 2, len(rows) // 2, len(rows) - 2, len(rows) - 1]
    shown = [rows[i] for i in sorted(set(keep))]
    save_rows("table1_dp_oracle", shown,
              columns=["option", "episode_work", "residual_lifespan", "opportunity_work"],
              title="Table 1 (exact DP continuation), U=200, c=2, p=2")
