"""Experiment: Section 3.1 — the non-adaptive guideline's guarantee.

Sweeps the guideline ``S_na^(p)[U]`` over lifespans and interrupt budgets,
measures its exact worst-case work against the optimal period-end adversary
and compares it with the closed forms (the derived ``U − 2√(pcU) + pc`` and
the ``U − √(2pcU) + pc`` printed in the extended abstract — see DESIGN.md
for the OCR note).  Also reports the strongest member of the equal-period
family found by direct search, to confirm the guideline's period count is
essentially the best possible.
"""

import pytest

from bench_util import save_rows
from repro import CycleStealingParams
from repro.analysis import bounds, nonadaptive_guarantee_sweep
from repro.schedules import RosenbergNonAdaptiveScheduler, TunedEqualPeriodScheduler

LIFESPANS = [1_000.0, 10_000.0, 100_000.0]
BUDGETS = [1, 2, 4, 8]


def test_bench_nonadaptive_guarantee(benchmark):
    rows = benchmark.pedantic(nonadaptive_guarantee_sweep, args=(LIFESPANS, 1.0, BUDGETS),
                              rounds=1, iterations=1)
    save_rows("nonadaptive_section31", rows,
              columns=["lifespan", "max_interrupts", "num_periods", "measured_work",
                       "predicted_work", "predicted_work_paper", "efficiency"],
              title="Section 3.1: non-adaptive guideline, c = 1")
    for row in rows:
        assert row["measured_work"] == pytest.approx(row["predicted_work"], abs=10.0)


def test_bench_nonadaptive_vs_tuned(benchmark):
    """The closed-form period count is near the best equal-period choice."""
    params = CycleStealingParams(lifespan=10_000.0, setup_cost=1.0, max_interrupts=2)
    guideline = RosenbergNonAdaptiveScheduler()
    tuned = TunedEqualPeriodScheduler(max_candidates=120)

    guideline_work = benchmark(guideline.guaranteed_work, params)
    tuned_work = tuned.guaranteed_work(params)
    rows = [{
        "lifespan": params.lifespan,
        "max_interrupts": params.max_interrupts,
        "guideline_work": guideline_work,
        "tuned_equal_period_work": tuned_work,
        "shortfall": tuned_work - guideline_work,
        "shortfall_over_sqrt_cU": (tuned_work - guideline_work) / params.lifespan ** 0.5,
    }]
    save_rows("nonadaptive_vs_tuned", rows,
              title="Guideline period count vs best equal-period search")
    assert tuned_work - guideline_work <= 0.2 * params.lifespan ** 0.5 + 3.0
