"""Experiment: point throughput of the distributed work-stealing executor.

Runs the same fixed-cost sweep through ``run_spec_distributed`` at 1, 2
and 4 loopback worker processes (each point's cost is pinned by the
``REPRO_TEST_POINT_DELAY`` hook, so throughput measures the executor —
lease round-trips, shard streaming, coordinator writes — rather than
the host's core count), plus one DP-enabled sweep evidencing the
content-addressed table service: 8 points across 2 racing workers must
cost exactly one DP solve per distinct ``(L, c, p)`` key.

The committed evidence (``benchmarks/results/distributed_sweep.*``) is
enforced by ``scripts/check_bench_regression.py --only distributed-sweep``:
the 2-worker speedup must stay at or above ``SPEEDUP_FLOOR`` and the
table-service row must keep ``dp_solves == distinct_table_keys`` (the
guard re-runs that cluster live and re-derives the key count).
"""

from bench_util import save_rows
from distributed_util import (
    SPEEDUP_FLOOR,
    WORKER_COUNTS,
    expected_table_keys,
    measure_scaling,
    measure_table_service,
)


def test_bench_distributed_sweep(benchmark, tmp_path):
    rows = benchmark.pedantic(
        lambda: [measure_scaling(tmp_path, workers)
                 for workers in WORKER_COUNTS],
        rounds=1, iterations=1)
    baseline = rows[0]["points_per_s"]
    for row in rows:
        row["speedup"] = round(row["points_per_s"] / baseline, 2)
    table_row = measure_table_service(tmp_path)
    rows.append(table_row)
    save_rows("distributed_sweep", rows,
              title="Distributed sweep: throughput vs workers + DP table "
                    "service")

    by_workers = {row["workers"]: row for row in rows
                  if row["kind"] == "scaling"}
    assert by_workers[2]["speedup"] >= SPEEDUP_FLOOR, (
        f"2 workers pushed only {by_workers[2]['speedup']}x the 1-worker "
        f"throughput (floor {SPEEDUP_FLOOR}x)")
    assert by_workers[4]["speedup"] >= by_workers[2]["speedup"], (
        "4 workers slower than 2 — the executor stopped scaling")
    # The tentpole's exactly-once claim: one DP solve per distinct key,
    # cluster-wide, no matter how the 2 workers raced for tables.
    assert table_row["dp_solves"] == expected_table_keys() \
        == table_row["distinct_table_keys"]
    assert table_row["table_requests"] >= table_row["dp_solves"]
