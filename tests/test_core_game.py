"""Tests for the game referees and the exact minimax evaluation."""

import pytest

from repro import CycleStealingParams, EpisodeSchedule, guaranteed_adaptive_work
from repro.adversary import (
    FirstPeriodAdversary,
    LastPeriodAdversary,
    MinimaxAdversary,
    NeverInterruptAdversary,
    OptimalNonAdaptiveAdversary,
)
from repro.core.game import play_adaptive, play_nonadaptive
from repro.core.exceptions import SchedulingError
from repro.schedules import (
    EqualizingAdaptiveScheduler,
    ExactP1Scheduler,
    FixedPeriodScheduler,
    RosenbergNonAdaptiveScheduler,
    SinglePeriodScheduler,
)


class TestPlayAdaptive:
    def test_no_adversary_yields_single_long_period_work(self):
        params = CycleStealingParams(100.0, 1.0, 2)
        result = play_adaptive(SinglePeriodScheduler(), NeverInterruptAdversary(), params)
        assert result.total_work == pytest.approx(99.0)
        assert result.num_episodes == 1
        assert result.num_interrupts == 0
        assert result.efficiency == pytest.approx(0.99)
        assert result.loss == pytest.approx(1.0)

    def test_single_period_scheduler_killed_by_last_period_adversary(self):
        params = CycleStealingParams(100.0, 1.0, 1)
        result = play_adaptive(SinglePeriodScheduler(), LastPeriodAdversary(), params)
        # Only episode is killed just before its end; the residual sliver is
        # scheduled as a new (vanishingly short) episode.
        assert result.total_work == pytest.approx(0.0, abs=1e-6)
        assert result.num_interrupts == 1

    def test_interrupt_budget_enforced(self):
        params = CycleStealingParams(100.0, 1.0, 1)
        # An adversary that always wants to interrupt only gets to do so once.
        result = play_adaptive(ExactP1Scheduler(), FirstPeriodAdversary(), params)
        assert result.num_interrupts == 1

    def test_transcript_conservation(self):
        params = CycleStealingParams(200.0, 1.0, 2)
        scheduler = EqualizingAdaptiveScheduler()
        result = play_adaptive(scheduler, FirstPeriodAdversary(), params)
        assert result.transcript.total_elapsed <= params.lifespan + 1e-6
        assert 0.0 <= result.total_work <= params.lifespan

    def test_rejects_bad_adversary_time(self):
        class BadAdversary:
            name = "bad"

            def choose_interrupt(self, schedule, residual, p, c):
                return schedule.total_length + 5.0

        params = CycleStealingParams(50.0, 1.0, 1)
        with pytest.raises(SchedulingError):
            play_adaptive(SinglePeriodScheduler(), BadAdversary(), params)

    def test_rejects_overcommitting_scheduler(self):
        class BadScheduler:
            name = "bad"

            def episode_schedule(self, residual, p, c):
                return EpisodeSchedule([residual * 2.0])

        params = CycleStealingParams(50.0, 1.0, 1)
        with pytest.raises(SchedulingError):
            play_adaptive(BadScheduler(), NeverInterruptAdversary(), params)


class TestPlayNonAdaptive:
    def test_oblivious_tail_reuse(self):
        params = CycleStealingParams(100.0, 1.0, 2)
        scheduler = FixedPeriodScheduler(period_length=10.0)
        result = play_nonadaptive(scheduler, NeverInterruptAdversary(), params)
        assert result.total_work == pytest.approx(90.0)

    def test_with_optimal_adversary_matches_worst_case(self):
        params = CycleStealingParams(400.0, 1.0, 2)
        scheduler = RosenbergNonAdaptiveScheduler()
        result = play_nonadaptive(scheduler, OptimalNonAdaptiveAdversary(), params)
        assert result.total_work == pytest.approx(scheduler.guaranteed_work(params),
                                                  rel=1e-6, abs=1e-4)

    def test_budget_exhaustion_gives_long_final_period(self):
        params = CycleStealingParams(100.0, 1.0, 1)
        scheduler = FixedPeriodScheduler(period_length=10.0)
        result = play_nonadaptive(scheduler, FirstPeriodAdversary(), params)
        # First period killed at ~10; remainder (~90) runs as one long period.
        assert result.total_work == pytest.approx(89.0, abs=0.1)
        assert result.num_interrupts == 1

    def test_single_period_baseline_zeroed_by_adversary(self):
        params = CycleStealingParams(100.0, 1.0, 1)
        result = play_nonadaptive(SinglePeriodScheduler(), LastPeriodAdversary(), params)
        assert result.total_work == pytest.approx(0.0, abs=1e-5)


class TestGuaranteedAdaptiveWork:
    def test_p0_is_single_period_work(self):
        params = CycleStealingParams(50.0, 1.0, 0)
        assert guaranteed_adaptive_work(SinglePeriodScheduler(), params) == pytest.approx(49.0)

    def test_single_period_guarantees_nothing_under_interrupts(self):
        params = CycleStealingParams(50.0, 1.0, 1)
        assert guaranteed_adaptive_work(SinglePeriodScheduler(), params) == pytest.approx(0.0)

    def test_matches_minimax_adversary_play(self):
        params = CycleStealingParams(300.0, 1.0, 2)
        scheduler = EqualizingAdaptiveScheduler()
        value = guaranteed_adaptive_work(scheduler, params)
        result = play_adaptive(scheduler, MinimaxAdversary(scheduler), params)
        assert result.total_work == pytest.approx(value, rel=1e-6, abs=1e-3)

    def test_never_exceeds_p0_optimum(self):
        params = CycleStealingParams(300.0, 1.0, 3)
        scheduler = EqualizingAdaptiveScheduler()
        assert guaranteed_adaptive_work(scheduler, params) <= params.lifespan - params.setup_cost

    def test_heuristic_adversaries_never_beat_minimax(self):
        params = CycleStealingParams(300.0, 1.0, 2)
        scheduler = EqualizingAdaptiveScheduler()
        guarantee = guaranteed_adaptive_work(scheduler, params)
        for adversary in (NeverInterruptAdversary(), FirstPeriodAdversary(),
                          LastPeriodAdversary()):
            result = play_adaptive(scheduler, adversary, params)
            assert result.total_work >= guarantee - 1e-6
