"""The curated public facade and the keyword-only consolidation shims.

``repro.__all__`` is the supported surface (docs/api.md): every name must
resolve, the heavy ones must resolve *lazily*, and the config-bearing
parameters of the blessed entry points are keyword-only — with a
deprecation shim that keeps legacy positional callers working while
naming the exact replacement spelling.
"""

import subprocess
import sys
import warnings

import pytest

import repro
from repro.experiments.grid import SweepPoint
from repro.experiments.montecarlo import replicate_point
from repro.runstore import ROW_SOURCES, run_spec
from repro.specs import parse_spec

SPEC = {
    "experiment": {"name": "facade", "kind": "sweep", "seed": 0,
                   "replications": 0},
    "sweep": {"lifespans": [40.0], "setup_costs": [1.0], "interrupts": [1],
              "schedulers": ["equalizing-adaptive"]},
}


class TestFacade:
    def test_every_public_name_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_blessed_entry_points_are_exported(self):
        for name in ("run_spec", "resume_run", "Run", "RunColumns",
                     "Catalog", "CatalogError", "export_frame",
                     "ExperimentSpec", "load_spec", "parse_spec",
                     "spec_digest", "spec_summary", "replicate_point",
                     "SCHEDULERS", "ADVERSARIES", "SCENARIO_FAMILIES"):
            assert name in repro.__all__, name

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError, match="no attribute"):
            repro.definitely_not_an_export

    def test_facade_is_lazy(self):
        # `import repro` must not drag in the run store / catalog /
        # experiments machinery; touching a facade name loads it then.
        code = (
            "import sys, repro\n"
            "heavy = [m for m in ('repro.runstore', 'repro.catalog',"
            " 'repro.experiments.montecarlo') if m in sys.modules]\n"
            "assert not heavy, f'eagerly imported: {heavy}'\n"
            "repro.Catalog\n"
            "assert 'repro.catalog' in sys.modules\n"
        )
        subprocess.run([sys.executable, "-c", code], check=True)

    def test_dir_lists_lazy_exports(self):
        listing = dir(repro)
        assert "Catalog" in listing and "run_spec" in listing


class TestSharedSourceVocabulary:
    def test_row_sources_constant(self):
        assert ROW_SOURCES == ("auto", "sidecar", "shards")

    def test_rows_columns_and_schema_share_the_error(self, tmp_path):
        run = run_spec(parse_spec(SPEC), runs_dir=str(tmp_path))
        for method in (run.rows, run.columns, run.column_schema):
            with pytest.raises(ValueError,
                               match="unknown source 'bogus'"):
                method(source="bogus")

    def test_column_schema_exposes_dtypes(self, tmp_path):
        run = run_spec(parse_spec(SPEC), runs_dir=str(tmp_path))
        schema = run.column_schema()
        assert schema["lifespan"] == "<f8"
        assert schema["max_interrupts"] == "<i8"
        assert set(schema) == set(run.rows()[0])


class TestKeywordOnlyShims:
    def test_run_spec_positional_runs_dir_warns_but_works(self, tmp_path):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            run = run_spec(parse_spec(SPEC), str(tmp_path))
        assert run.status == "complete"
        messages = [str(w.message) for w in caught
                    if issubclass(w.category, DeprecationWarning)]
        assert any("runs_dir=..." in m and "run_spec" in m
                   for m in messages)

    def test_keyword_call_does_not_warn(self, tmp_path):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            run_spec(parse_spec(SPEC), runs_dir=str(tmp_path))
        assert not [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]

    def test_replicate_point_positional_base_seed_matches_keyword(self):
        point = SweepPoint(index=0, lifespan=80.0, setup_cost=1.0,
                           max_interrupts=1, scheduler="equalizing-adaptive",
                           adversary="poisson-owner")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            legacy = replicate_point(point, 4, 7)
        assert any("base_seed=..." in str(w.message) for w in caught
                   if issubclass(w.category, DeprecationWarning))
        assert legacy == replicate_point(point, 4, base_seed=7)

    def test_too_many_positionals_is_a_type_error(self):
        point = SweepPoint(index=0, lifespan=80.0, setup_cost=1.0,
                           max_interrupts=1, scheduler="equalizing-adaptive",
                           adversary="poisson-owner")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with pytest.raises(TypeError, match="positional"):
                replicate_point(point, 4, 7, "event")

    def test_positional_and_keyword_is_a_type_error(self, tmp_path):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with pytest.raises(TypeError, match="multiple values"):
                run_spec(parse_spec(SPEC), str(tmp_path),
                         runs_dir=str(tmp_path))
