"""Tests for the structural transformations (Theorems 4.1 and 4.2) and baselines."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CycleStealingParams, EpisodeSchedule
from repro.core.work import worst_case_nonadaptive_work
from repro.schedules import (
    DPOptimalScheduler,
    EqualSplitScheduler,
    FixedPeriodScheduler,
    GeometricPeriodScheduler,
    SinglePeriodScheduler,
    compact_immune_tail,
    count_nonproductive,
    immunity_order,
    make_fully_productive,
    make_productive,
)
from repro.core.exceptions import SchedulingError

period_lists = st.lists(st.floats(min_value=0.1, max_value=30.0), min_size=1, max_size=12)


class TestProductiveTransformation:
    def test_merges_short_middle_period(self):
        s = EpisodeSchedule([3.0, 0.5, 3.0])
        out = make_productive(s, 1.0)
        assert list(out) == [3.0, 3.5]
        assert out.is_productive(1.0)

    def test_leaves_productive_schedule_alone(self):
        s = EpisodeSchedule([3.0, 2.0, 4.0])
        assert make_productive(s, 1.0) == s

    def test_short_last_period_untouched_by_productive(self):
        s = EpisodeSchedule([3.0, 0.5])
        out = make_productive(s, 1.0)
        assert list(out) == [3.0, 0.5]

    def test_fully_productive_merges_last(self):
        s = EpisodeSchedule([3.0, 0.5])
        out = make_fully_productive(s, 1.0)
        assert list(out) == [3.5]
        assert out.is_fully_productive(1.0)

    def test_all_short_periods_collapse(self):
        s = EpisodeSchedule([0.3, 0.3, 0.3])
        out = make_fully_productive(s, 1.0)
        assert out.num_periods == 1
        assert out.total_length == pytest.approx(0.9)

    def test_count_nonproductive(self):
        s = EpisodeSchedule([3.0, 0.5, 0.2])
        assert count_nonproductive(s, 1.0) == 1
        assert count_nonproductive(s, 1.0, include_last=True) == 2

    @settings(deadline=None, max_examples=60)
    @given(period_lists, st.floats(min_value=0.0, max_value=3.0),
           st.integers(min_value=0, max_value=3))
    def test_theorem41_never_decreases_guaranteed_work(self, lengths, c, p):
        """The productive rewrite cannot lower worst-case work (Thm 4.1)."""
        s = EpisodeSchedule(lengths)
        params = CycleStealingParams(lifespan=s.total_length, setup_cost=c,
                                     max_interrupts=p)
        before = worst_case_nonadaptive_work(s, params)
        after = worst_case_nonadaptive_work(make_productive(s, c), params)
        assert after >= before - 1e-9

    @settings(deadline=None, max_examples=60)
    @given(period_lists, st.floats(min_value=0.0, max_value=3.0))
    def test_length_preserved(self, lengths, c):
        s = EpisodeSchedule(lengths)
        assert make_productive(s, c).total_length == pytest.approx(s.total_length)
        assert make_fully_productive(s, c).total_length == pytest.approx(s.total_length)

    @settings(deadline=None, max_examples=60)
    @given(period_lists, st.floats(min_value=0.0, max_value=3.0))
    def test_result_is_productive(self, lengths, c):
        s = EpisodeSchedule(lengths)
        assert make_productive(s, c).is_productive(c)


class TestImmuneCompaction:
    def test_immunity_order_of_equal_periods(self):
        s = EpisodeSchedule.equal_periods(100.0, 10)
        params = CycleStealingParams(100.0, 1.0, 2)
        r = immunity_order(s, params)
        assert 0 <= r <= 10

    def test_immunity_order_no_interrupts(self):
        s = EpisodeSchedule.equal_periods(100.0, 10)
        params = CycleStealingParams(100.0, 1.0, 0)
        assert immunity_order(s, params) == 10

    def test_compaction_preserves_length(self):
        s = EpisodeSchedule([30.0, 30.0, 40.0])
        out = compact_immune_tail(s, 1.0, r=1)
        assert out.total_length == pytest.approx(100.0)
        assert list(out.periods[:2]) == [30.0, 30.0]

    def test_compacted_tail_periods_short(self):
        s = EpisodeSchedule([30.0, 30.0, 40.0])
        out = compact_immune_tail(s, 1.0, r=1, epsilon=0.5)
        tail = out.periods[2:]
        assert all(t <= 3.0 + 1e-9 for t in tail[:-1])

    def test_r_zero_is_identity(self):
        s = EpisodeSchedule([30.0, 70.0])
        assert compact_immune_tail(s, 1.0, r=0) is s

    def test_invalid_epsilon(self):
        s = EpisodeSchedule([30.0, 70.0])
        with pytest.raises(ValueError):
            compact_immune_tail(s, 1.0, r=1, epsilon=0.0)

    def test_theorem42_on_final_period_split(self):
        """Splitting the schedule's last long period can only help (Thm 4.2)."""
        params = CycleStealingParams(100.0, 1.0, 1)
        coarse = EpisodeSchedule([50.0, 50.0])
        refined = compact_immune_tail(coarse, 1.0, r=1)
        assert (worst_case_nonadaptive_work(refined, params)
                >= worst_case_nonadaptive_work(coarse, params) - 1e-9)


class TestBaselines:
    def test_single_period(self):
        params = CycleStealingParams(100.0, 1.0, 2)
        s = SinglePeriodScheduler()
        assert s.opportunity_schedule(params).num_periods == 1
        assert s.episode_schedule(40.0, 1, 1.0).num_periods == 1
        with pytest.raises(SchedulingError):
            s.episode_schedule(0.0, 1, 1.0)

    def test_fixed_period(self):
        params = CycleStealingParams(100.0, 1.0, 2)
        s = FixedPeriodScheduler(period_length=30.0)
        schedule = s.opportunity_schedule(params)
        assert schedule.total_length == pytest.approx(100.0)
        assert schedule.num_periods == 3
        assert "30" in s.describe()
        with pytest.raises(ValueError):
            FixedPeriodScheduler(period_length=0.0)

    def test_fixed_period_short_lifespan(self):
        s = FixedPeriodScheduler(period_length=30.0)
        assert s.episode_schedule(10.0, 1, 1.0).num_periods == 1

    def test_geometric_period(self):
        params = CycleStealingParams(1_000.0, 1.0, 2)
        s = GeometricPeriodScheduler(initial_length=10.0, growth=2.0)
        schedule = s.opportunity_schedule(params)
        assert schedule.total_length == pytest.approx(1_000.0)
        assert schedule[1] == pytest.approx(20.0)
        with pytest.raises(ValueError):
            GeometricPeriodScheduler(growth=1.0)
        with pytest.raises(ValueError):
            GeometricPeriodScheduler(initial_length=-1.0)

    def test_geometric_defaults(self):
        s = GeometricPeriodScheduler()
        schedule = s.episode_schedule(500.0, 1, 1.0)
        assert schedule.total_length == pytest.approx(500.0)

    def test_equal_split(self):
        params = CycleStealingParams(90.0, 1.0, 2)
        s = EqualSplitScheduler()
        schedule = s.opportunity_schedule(params)
        assert schedule.num_periods == 3
        assert schedule[0] == pytest.approx(30.0)
        adaptive = s.episode_schedule(60.0, 1, 1.0)
        assert adaptive.num_periods == 2

    def test_equal_split_guarantees_only_one_chunk(self):
        """The naive p+1-way split only ever banks a single chunk: the
        adversary kills p of the p+1 periods, so the guarantee collapses to
        U/(p+1) − c instead of the guideline's U − O(√(pcU))."""
        params = CycleStealingParams(90.0, 1.0, 2)
        assert EqualSplitScheduler().guaranteed_work(params) == pytest.approx(29.0)

    def test_guideline_beats_baselines(self, small_table):
        """Who wins: guideline > fixed chunks > single period (worst case)."""
        from repro.schedules import EqualizingAdaptiveScheduler

        params = CycleStealingParams(600.0, 1.0, 2)
        guideline = EqualizingAdaptiveScheduler().guaranteed_work(params)
        fixed = FixedPeriodScheduler(period_length=60.0).guaranteed_work(params)
        single = SinglePeriodScheduler().guaranteed_work(params)
        assert guideline > fixed > single


class TestDPOptimalScheduler:
    def test_for_params_constructor(self):
        params = CycleStealingParams(300.0, 1.0, 2)
        scheduler = DPOptimalScheduler.for_params(params)
        assert scheduler.table.max_lifespan == 300
        assert scheduler.optimal_work(params) == scheduler.table.value(2, 300)

    def test_for_params_requires_integer_cost(self):
        params = CycleStealingParams(300.0, 1.5, 2)
        with pytest.raises(SchedulingError):
            DPOptimalScheduler.for_params(params)

    def test_episode_schedule_validations(self, small_table):
        scheduler = DPOptimalScheduler(small_table)
        with pytest.raises(SchedulingError):
            scheduler.episode_schedule(100.0, 1, 2.0)      # wrong setup cost
        with pytest.raises(SchedulingError):
            scheduler.episode_schedule(10_000.0, 1, 1.0)   # beyond the table
        with pytest.raises(SchedulingError):
            scheduler.episode_schedule(-1.0, 1, 1.0)

    def test_fractional_residuals_covered(self, small_table):
        scheduler = DPOptimalScheduler(small_table)
        schedule = scheduler.episode_schedule(123.75, 2, 1.0)
        assert schedule.total_length == pytest.approx(123.75)

    def test_tiny_residual(self, small_table):
        scheduler = DPOptimalScheduler(small_table)
        schedule = scheduler.episode_schedule(0.5, 2, 1.0)
        assert schedule.num_periods == 1

    def test_optimal_work_argument_validation(self, small_table):
        scheduler = DPOptimalScheduler(small_table)
        with pytest.raises(SchedulingError):
            scheduler.optimal_work()

    def test_dominates_guidelines(self, small_table):
        from repro.schedules import EqualizingAdaptiveScheduler, RosenbergAdaptiveScheduler

        params = CycleStealingParams(600.0, 1.0, 3)
        dp_work = DPOptimalScheduler(small_table).guaranteed_work(params)
        assert dp_work >= EqualizingAdaptiveScheduler().guaranteed_work(params) - 1e-6
        assert dp_work >= RosenbergAdaptiveScheduler().guaranteed_work(params) - 1e-6
