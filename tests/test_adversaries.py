"""Tests for adversaries and stochastic owners."""

import pytest

from repro import CycleStealingParams, EpisodeSchedule
from repro.adversary import (
    FirstPeriodAdversary,
    FixedTimesAdversary,
    LastPeriodAdversary,
    LongestPeriodAdversary,
    MinimaxAdversary,
    NeverInterruptAdversary,
    OptimalNonAdaptiveAdversary,
    PoissonOwner,
    RandomPeriodAdversary,
    UniformResidualOwner,
    last_instant_of_period,
)
from repro.core.game import play_adaptive, play_nonadaptive
from repro.schedules import EqualizingAdaptiveScheduler, RosenbergNonAdaptiveScheduler


@pytest.fixture
def schedule():
    return EpisodeSchedule([5.0, 3.0, 2.0])


class TestLastInstant:
    def test_inside_period(self, schedule):
        t = last_instant_of_period(schedule, 2)
        assert 5.0 <= t < 8.0
        assert schedule.period_containing(t) == 2

    def test_last_period(self, schedule):
        t = last_instant_of_period(schedule, 3)
        assert 8.0 <= t < 10.0


class TestHeuristicAdversaries:
    def test_never(self, schedule):
        assert NeverInterruptAdversary().choose_interrupt(schedule, 10.0, 1, 1.0) is None

    def test_first_period(self, schedule):
        t = FirstPeriodAdversary().choose_interrupt(schedule, 10.0, 1, 1.0)
        assert schedule.period_containing(t) == 1

    def test_last_period(self, schedule):
        t = LastPeriodAdversary().choose_interrupt(schedule, 10.0, 1, 1.0)
        assert schedule.period_containing(t) == 3

    def test_longest_period(self, schedule):
        t = LongestPeriodAdversary().choose_interrupt(schedule, 10.0, 1, 1.0)
        assert schedule.period_containing(t) == 1

    def test_fixed_times(self, schedule):
        adv = FixedTimesAdversary(times=[7.0], lifespan=20.0)
        # At the start of the opportunity (residual 20), time 7 falls inside.
        assert adv.choose_interrupt(schedule, 20.0, 1, 1.0) == pytest.approx(7.0)
        # Later (residual 5 -> elapsed 15), the trace time has passed.
        assert adv.choose_interrupt(schedule, 5.0, 1, 1.0) is None

    def test_random_period_reproducible(self, schedule):
        a = RandomPeriodAdversary(seed=42)
        b = RandomPeriodAdversary(seed=42)
        assert a.choose_interrupt(schedule, 10.0, 1, 1.0) == \
            b.choose_interrupt(schedule, 10.0, 1, 1.0)

    def test_random_period_probability_zero(self, schedule):
        adv = RandomPeriodAdversary(probability=0.0, seed=1)
        assert adv.choose_interrupt(schedule, 10.0, 1, 1.0) is None

    def test_random_period_validation(self):
        with pytest.raises(ValueError):
            RandomPeriodAdversary(probability=1.5)

    def test_describe_and_reset(self):
        adv = NeverInterruptAdversary()
        assert adv.describe() == "never"
        adv.reset()


class TestStochasticOwners:
    def test_poisson_validation(self):
        with pytest.raises(ValueError):
            PoissonOwner(rate=0.0)

    def test_poisson_interrupts_inside_episode(self, schedule):
        owner = PoissonOwner(rate=10.0, seed=0)
        t = owner.choose_interrupt(schedule, 10.0, 1, 1.0)
        assert t is None or 0.0 <= t < schedule.total_length

    def test_poisson_low_rate_rarely_interrupts(self, schedule):
        owner = PoissonOwner(rate=1e-9, seed=0)
        assert owner.choose_interrupt(schedule, 10.0, 1, 1.0) is None

    def test_uniform_owner(self, schedule):
        owner = UniformResidualOwner(seed=3)
        t = owner.choose_interrupt(schedule, 100.0, 1, 1.0)
        assert t is None or 0.0 <= t < schedule.total_length

    def test_uniform_owner_validation(self):
        with pytest.raises(ValueError):
            UniformResidualOwner(reclaim_probability=-0.1)


class TestOptimalAdversaries:
    def test_minimax_dominates_heuristics(self):
        scheduler = EqualizingAdaptiveScheduler()
        params = CycleStealingParams(300.0, 1.0, 2)
        minimax_work = play_adaptive(scheduler, MinimaxAdversary(scheduler), params).total_work
        for adversary in (NeverInterruptAdversary(), FirstPeriodAdversary(),
                          LastPeriodAdversary(), LongestPeriodAdversary()):
            other = play_adaptive(scheduler, adversary, params).total_work
            assert minimax_work <= other + 1e-6

    def test_minimax_abstains_when_no_damage_possible(self):
        scheduler = EqualizingAdaptiveScheduler()
        adv = MinimaxAdversary(scheduler)
        # A schedule of one unproductive period: interrupting gains nothing.
        schedule = EpisodeSchedule([0.5])
        assert adv.choose_interrupt(schedule, 0.5, 1, 1.0) is None

    def test_optimal_nonadaptive_dominates_heuristics(self):
        scheduler = RosenbergNonAdaptiveScheduler()
        params = CycleStealingParams(400.0, 1.0, 2)
        optimal = play_nonadaptive(scheduler, OptimalNonAdaptiveAdversary(), params).total_work
        for adversary in (NeverInterruptAdversary(), FirstPeriodAdversary(),
                          LastPeriodAdversary()):
            other = play_nonadaptive(scheduler, adversary, params).total_work
            assert optimal <= other + 1e-6

    def test_optimal_nonadaptive_abstains_with_zero_budget_value(self):
        adv = OptimalNonAdaptiveAdversary()
        schedule = EpisodeSchedule([0.5])
        assert adv.choose_interrupt(schedule, 0.5, 1, 1.0) is None
