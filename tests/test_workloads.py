"""Tests for task bags, owner-activity traces and scenarios."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.workloads import (
    TaskBag,
    bursty_interrupts,
    constant_tasks,
    evenly_spaced_interrupts,
    laptop_evening,
    lognormal_tasks,
    overnight_desktops,
    poisson_interrupts,
    shared_lab,
    uniform_tasks,
    workday_interrupts,
)


class TestTaskBag:
    def test_basic_accounting(self):
        bag = TaskBag([1.0, 2.0, 3.0])
        assert bag.total_tasks == 3
        assert bag.total_work == 6.0
        assert bag.remaining_work == 6.0
        assert not bag.is_empty

    def test_take_whole_tasks_only(self):
        bag = TaskBag([1.0, 2.0, 3.0])
        count, used = bag.take(2.5)
        assert count == 1 and used == 1.0
        count, used = bag.take(5.5)
        assert count == 2 and used == 5.0
        assert bag.is_empty and bag.completed_tasks == 3

    def test_take_with_no_capacity(self):
        bag = TaskBag([1.0])
        assert bag.take(0.0) == (0, 0.0)

    def test_reset(self):
        bag = TaskBag([1.0, 1.0])
        bag.take(10.0)
        bag.reset()
        assert bag.remaining_tasks == 2 and bag.completed_tasks == 0

    def test_chunk_of(self):
        bag = TaskBag([1.0, 2.0, 3.0])
        assert bag.chunk_of(2) == 3.0
        assert bag.chunk_of(10) == 6.0

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            TaskBag([1.0, -1.0])
        with pytest.raises(ValueError):
            TaskBag([0.0])

    def test_generators(self):
        assert constant_tasks(5, 2.0).total_work == 10.0
        assert uniform_tasks(100, 0.5, 1.5, seed=0).total_tasks == 100
        assert lognormal_tasks(100, median=1.0, seed=0).total_tasks == 100
        with pytest.raises(ValueError):
            constant_tasks(-1)
        with pytest.raises(ValueError):
            uniform_tasks(10, 2.0, 1.0)
        with pytest.raises(ValueError):
            lognormal_tasks(10, median=-1.0)

    @given(st.lists(st.floats(min_value=0.1, max_value=5.0), min_size=1, max_size=30),
           st.floats(min_value=0.0, max_value=100.0))
    def test_take_never_exceeds_capacity(self, sizes, capacity):
        bag = TaskBag(sizes)
        count, used = bag.take(capacity)
        assert used <= capacity + 1e-9
        assert count == bag.completed_tasks


class TestOwnerActivity:
    def test_poisson_interrupts_within_lifespan(self):
        times = poisson_interrupts(100.0, rate=0.1, seed=1)
        assert all(0.0 <= t < 100.0 for t in times)
        assert times == sorted(times)

    def test_poisson_zero_rate(self):
        assert poisson_interrupts(100.0, rate=0.0) == []

    def test_poisson_max_interrupts_cap(self):
        times = poisson_interrupts(1_000.0, rate=1.0, seed=1, max_interrupts=3)
        assert len(times) == 3

    def test_poisson_validation(self):
        with pytest.raises(ValueError):
            poisson_interrupts(0.0, rate=1.0)

    def test_evenly_spaced(self):
        assert evenly_spaced_interrupts(100.0, 3) == [25.0, 50.0, 75.0]
        assert evenly_spaced_interrupts(100.0, 0) == []

    def test_workday_pattern(self):
        times = workday_interrupts(960.0, day_length=480.0, busy_fraction=0.5,
                                   rate_when_busy=0.05, seed=2)
        assert all(0.0 <= t < 960.0 for t in times)
        # No interrupt should land in the quiet half of either day.
        for t in times:
            assert (t % 480.0) <= 240.0
        with pytest.raises(ValueError):
            workday_interrupts(100.0, busy_fraction=2.0)

    def test_bursty(self):
        times = bursty_interrupts(200.0, num_bursts=3, burst_size=2, seed=3)
        assert all(0.0 <= t < 200.0 for t in times)
        assert times == sorted(times)
        with pytest.raises(ValueError):
            bursty_interrupts(200.0, num_bursts=-1)

    def test_worst_case_trace(self):
        from repro import CycleStealingParams, EpisodeSchedule
        from repro.workloads import worst_case_interrupts_for_schedule

        schedule = EpisodeSchedule.equal_periods(100.0, 10)
        params = CycleStealingParams(100.0, 1.0, 2)
        trace = worst_case_interrupts_for_schedule(schedule, params)
        assert len(trace) <= 2
        assert all(0.0 <= t < 100.0 for t in trace)


class TestScenarios:
    @pytest.mark.parametrize("factory", [laptop_evening, overnight_desktops, shared_lab])
    def test_scenarios_construct_and_describe(self, factory):
        scenario = factory()
        assert scenario.workstations
        assert scenario.task_bag.total_tasks > 0
        assert scenario.params.lifespan > 0
        assert scenario.name in scenario.describe()

    def test_scenarios_are_reproducible(self):
        a = laptop_evening(seed=5)
        b = laptop_evening(seed=5)
        assert a.workstations[0].owner_interrupts == b.workstations[0].owner_interrupts

    def test_scenarios_run_through_simulator(self):
        from repro.schedules import EqualizingAdaptiveScheduler
        from repro.simulator import CycleStealingSimulation

        scenario = laptop_evening()
        report = CycleStealingSimulation(scenario.workstations,
                                         EqualizingAdaptiveScheduler(),
                                         task_bag=scenario.task_bag).run()
        assert report.total_work > 0.0
        for ws in scenario.workstations:
            report.per_workstation[ws.workstation_id].check_conservation(ws.lifespan)


class TestNewScenarioFamilies:
    def test_registry_covers_all_families(self):
        from repro.workloads import SCENARIO_FAMILIES

        assert set(SCENARIO_FAMILIES) == {"laptop", "desktops", "lab",
                                          "office", "cluster", "flaky",
                                          "diurnal", "fleet"}
        for factory in SCENARIO_FAMILIES.values():
            scenario = factory()
            assert scenario.workstations and scenario.task_bag.total_tasks > 0

    def test_scenario_families_is_the_shared_registry(self):
        from repro.registry import SCENARIO_FAMILIES as registry_families
        from repro.workloads import SCENARIO_FAMILIES

        assert SCENARIO_FAMILIES is registry_families
        assert SCENARIO_FAMILIES["laptop"] is laptop_evening

    def test_office_day_is_seeded_and_bursty(self):
        from repro.workloads import bursty_office_day

        a = bursty_office_day(seed=9)
        b = bursty_office_day(seed=9)
        for wa, wb in zip(a.workstations, b.workstations):
            assert wa.owner_interrupts == wb.owner_interrupts
        c = bursty_office_day(seed=10)
        assert any(wa.owner_interrupts != wc.owner_interrupts
                   for wa, wc in zip(a.workstations, c.workstations))

    def test_cluster_speeds_and_setup_costs_vary(self):
        from repro.workloads import heterogeneous_cluster

        scenario = heterogeneous_cluster(seed=3)
        speeds = {ws.speed for ws in scenario.workstations}
        costs = {ws.setup_cost for ws in scenario.workstations}
        assert len(speeds) > 1 and len(costs) > 1
        assert all(ws.setup_cost >= 0.25 for ws in scenario.workstations)

    def test_flaky_owners_break_the_budget(self):
        from repro.workloads import flaky_owners

        scenario = flaky_owners(seed=4, num_machines=8, lifespan=600.0,
                                interrupt_budget=1, breach_factor=5.0)
        total_interrupts = sum(len(ws.owner_interrupts)
                               for ws in scenario.workstations)
        total_budget = sum(ws.interrupt_budget for ws in scenario.workstations)
        assert total_interrupts > total_budget  # the contract premise fails

    def test_flaky_rejects_bad_breach_factor(self):
        from repro.workloads import flaky_owners

        with pytest.raises(ValueError):
            flaky_owners(breach_factor=0.5)

    def test_families_run_through_simulator(self):
        from repro.schedules import EqualizingAdaptiveScheduler
        from repro.simulator import CycleStealingSimulation
        from repro.workloads import (
            bursty_office_day,
            flaky_owners,
            heterogeneous_cluster,
        )

        for factory in (bursty_office_day, heterogeneous_cluster, flaky_owners):
            scenario = factory()
            report = CycleStealingSimulation(scenario.workstations,
                                             EqualizingAdaptiveScheduler(),
                                             task_bag=scenario.task_bag).run()
            assert report.total_work > 0.0
            for ws in scenario.workstations:
                report.per_workstation[ws.workstation_id].check_conservation(
                    ws.lifespan)


class TestInhomogeneousPoisson:
    def test_times_sorted_and_inside_lifespan(self):
        from repro.workloads import diurnal_rate, inhomogeneous_poisson_interrupts

        rate = diurnal_rate(0.001, 0.05, day_length=480.0)
        times = inhomogeneous_poisson_interrupts(960.0, rate, max_rate=0.05,
                                                 seed=11)
        assert times == sorted(times)
        assert all(0.0 <= t < 960.0 for t in times)

    def test_deterministic_in_the_seed(self):
        from repro.workloads import diurnal_rate, inhomogeneous_poisson_interrupts

        rate = diurnal_rate(0.002, 0.04)
        a = inhomogeneous_poisson_interrupts(500.0, rate, max_rate=0.04, seed=3)
        b = inhomogeneous_poisson_interrupts(500.0, rate, max_rate=0.04, seed=3)
        c = inhomogeneous_poisson_interrupts(500.0, rate, max_rate=0.04, seed=4)
        assert a == b
        assert a != c

    def test_respects_max_interrupts(self):
        from repro.workloads import inhomogeneous_poisson_interrupts

        times = inhomogeneous_poisson_interrupts(
            10_000.0, lambda t: 0.1, max_rate=0.1, seed=0, max_interrupts=3)
        assert len(times) == 3

    def test_thinning_matches_homogeneous_special_case(self):
        # With rate_fn == max_rate every candidate is accepted, but the
        # acceptance draw still advances the stream, so the *count* should
        # land near the homogeneous expectation rate * lifespan.
        from repro.workloads import inhomogeneous_poisson_interrupts

        times = inhomogeneous_poisson_interrupts(
            20_000.0, lambda t: 0.05, max_rate=0.05, seed=5)
        assert 800 <= len(times) <= 1200  # mean 1000, +-6 sigma

    def test_rejects_rate_above_envelope(self):
        from repro.workloads import inhomogeneous_poisson_interrupts

        with pytest.raises(ValueError):
            inhomogeneous_poisson_interrupts(1000.0, lambda t: 1.0,
                                             max_rate=0.01, seed=0)

    def test_rejects_bad_parameters(self):
        from repro.workloads import diurnal_rate, inhomogeneous_poisson_interrupts

        with pytest.raises(ValueError):
            inhomogeneous_poisson_interrupts(0.0, lambda t: 0.1, max_rate=0.1)
        with pytest.raises(ValueError):
            diurnal_rate(0.5, 0.1)  # peak below base
        with pytest.raises(ValueError):
            diurnal_rate(0.1, 0.5, day_length=0.0)

    def test_diurnal_rate_profile_shape(self):
        from repro.workloads import diurnal_rate

        rate = diurnal_rate(0.01, 0.09, day_length=480.0, peak_time=240.0)
        assert rate(240.0) == pytest.approx(0.09)
        assert rate(0.0) == pytest.approx(0.01)
        assert rate(480.0 + 240.0) == pytest.approx(0.09)  # next day's peak


class TestDiurnalAndFleetFamilies:
    def test_diurnal_is_seeded_and_daytime_heavy(self):
        from repro.workloads import diurnal_owners

        a = diurnal_owners(seed=2)
        b = diurnal_owners(seed=2)
        for wa, wb in zip(a.workstations, b.workstations):
            assert wa.owner_interrupts == wb.owner_interrupts
        # Interrupts should cluster around the diurnal peaks: compare the
        # in-peak-half density against the off-peak half across machines.
        day = 480.0
        in_peak = off_peak = 0
        for ws in a.workstations:
            for t in ws.owner_interrupts:
                phase = t % day
                if day / 4 <= phase < 3 * day / 4:
                    in_peak += 1
                else:
                    off_peak += 1
        assert in_peak > off_peak

    def test_fleet_mixes_contract_shapes(self):
        from repro.workloads import mixed_fleet

        scenario = mixed_fleet(seed=1)
        costs = {ws.setup_cost for ws in scenario.workstations}
        budgets = {ws.interrupt_budget for ws in scenario.workstations}
        assert len(costs) >= 3 and len(budgets) >= 3
        kinds = {ws.workstation_id.split("-")[1] for ws in scenario.workstations}
        assert kinds == {"laptop", "desktop", "lab"}

    def test_new_families_run_through_simulator(self):
        from repro.schedules import EqualizingAdaptiveScheduler
        from repro.simulator import CycleStealingSimulation
        from repro.workloads import diurnal_owners, mixed_fleet

        for factory in (diurnal_owners, mixed_fleet):
            scenario = factory()
            report = CycleStealingSimulation(scenario.workstations,
                                             EqualizingAdaptiveScheduler(),
                                             task_bag=scenario.task_bag).run()
            assert report.total_work > 0.0
            for ws in scenario.workstations:
                report.per_workstation[ws.workstation_id].check_conservation(
                    ws.lifespan)
