"""Integration tests that check the paper's claims end-to-end.

Each test corresponds to a numbered statement in the paper (propositions,
observations, theorems, tables).  Where the extended abstract only gives a
leading-order formula the tests allow the low-order slack the paper itself
allows (``O(U^{1/4} + pc)`` style terms); the exact measured numbers are
recorded in EXPERIMENTS.md by the benchmark harness.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CycleStealingParams, EpisodeSchedule
from repro.analysis import bounds
from repro.core.work import worst_case_nonadaptive_work
from repro.dp import solve
from repro.schedules import (
    DPOptimalScheduler,
    EqualizingAdaptiveScheduler,
    ExactP1Scheduler,
    RosenbergAdaptiveScheduler,
    RosenbergNonAdaptiveScheduler,
    SinglePeriodScheduler,
)


class TestProposition41:
    """W^(p)[U] is monotone in U, antitone in p, zero below (p+1)c, and
    equals U − c for p = 0 — checked against the exact DP."""

    def test_a_monotone_in_lifespan(self, small_table):
        for p in range(small_table.max_interrupts + 1):
            curve = small_table.work_curve(p)
            assert all(curve[i + 1] >= curve[i] for i in range(len(curve) - 1))

    def test_b_antitone_in_interrupts(self, small_table):
        for L in (10, 100, 400, 600):
            values = [small_table.value(p, L) for p in range(small_table.max_interrupts + 1)]
            assert all(a >= b for a, b in zip(values, values[1:]))

    def test_c_zero_at_threshold(self, small_table):
        c = small_table.setup_cost
        for p in range(small_table.max_interrupts + 1):
            threshold = (p + 1) * c
            assert small_table.value(p, threshold) == 0

    def test_d_p0_optimum(self, small_table):
        for L in (5, 50, 500):
            assert small_table.value(0, L) == max(0, L - small_table.setup_cost)


class TestObservations:
    """Section 4.1's observations about the adversary's behaviour."""

    def test_a_last_instant_is_worst(self):
        """Interrupting later inside a period never helps the borrower."""
        from repro.core.work import episode_work

        schedule = EpisodeSchedule([10.0, 8.0, 6.0])
        for k in range(1, 4):
            start = schedule.finish_time(k - 1)
            end = schedule.finish_time(k)
            early = episode_work(schedule, 1.0, start)
            late = episode_work(schedule, 1.0, end - 1e-9)
            assert late <= early + 1e-9

    def test_b_adversary_always_interrupts_when_profitable(self, small_table):
        """For U > c and p > 0 the optimum is strictly below U − c: the
        adversary's interrupts genuinely cost the borrower something."""
        c = small_table.setup_cost
        for p in (1, 2, 3):
            for L in (50, 200, 600):
                assert small_table.value(p, L) < max(0, L - c)


class TestSection31NonAdaptive:
    def test_guideline_matches_derived_formula(self):
        sched = RosenbergNonAdaptiveScheduler()
        for U in (2_000.0, 20_000.0):
            for p in (1, 2, 4, 8):
                params = CycleStealingParams(U, 1.0, p)
                measured = sched.guaranteed_work(params)
                predicted = bounds.nonadaptive_guarantee(U, 1.0, p)
                assert measured == pytest.approx(predicted, abs=8.0)

    def test_loss_scales_as_sqrt_p(self):
        """Doubling p multiplies the √-loss by ≈ √2 (Section 3.1 shape)."""
        sched = RosenbergNonAdaptiveScheduler()
        U = 40_000.0
        losses = {}
        for p in (1, 2, 4):
            params = CycleStealingParams(U, 1.0, p)
            losses[p] = U - sched.guaranteed_work(params)
        assert losses[2] / losses[1] == pytest.approx(math.sqrt(2.0), rel=0.1)
        assert losses[4] / losses[2] == pytest.approx(math.sqrt(2.0), rel=0.1)


class TestTheorem51Adaptive:
    def test_loss_shape_and_near_optimality(self):
        """The adaptive guideline's loss is Θ(√(cU)) with a coefficient that
        approaches a constant (≈ 2·√2 at most) as p grows, and the guideline
        stays within low-order terms of the exact optimum."""
        U = 20_000
        table = solve(U, 1, 4)
        eq = EqualizingAdaptiveScheduler()
        for p in (1, 2, 3, 4):
            params = CycleStealingParams(float(U), 1.0, p)
            measured = eq.guaranteed_work(params)
            optimal = table.value(p, U)
            # Near-optimality: within O(U^{1/4} + pc) of the DP optimum.
            assert optimal - measured <= 2.0 * (U ** 0.25) + 4.0 * p
            # Loss of the right order: between the p=1 loss and 2.5·√(2cU).
            loss = params.lifespan - measured
            assert math.sqrt(2 * U) - 5.0 <= loss <= 2.5 * math.sqrt(2 * U) + 4.0 * p

    def test_adaptive_beats_nonadaptive(self):
        """The paper's reason for adaptivity: guaranteed work is higher."""
        for p in (1, 2, 4):
            params = CycleStealingParams(20_000.0, 1.0, p)
            adaptive = EqualizingAdaptiveScheduler().guaranteed_work(params)
            nonadaptive = RosenbergNonAdaptiveScheduler().guaranteed_work(params)
            assert adaptive > nonadaptive

    def test_guidelines_crush_naive_baselines(self):
        params = CycleStealingParams(20_000.0, 1.0, 2)
        adaptive = EqualizingAdaptiveScheduler().guaranteed_work(params)
        single = SinglePeriodScheduler().guaranteed_work(params)
        assert single == pytest.approx(0.0)
        assert adaptive > 0.98 * params.lifespan


class TestTable2:
    """Closed forms of Section 5.2 against exact measurements."""

    def test_epsilon_in_unit_interval(self):
        for U in (100.0, 1_234.0, 50_000.0):
            eps = bounds.optimal_p1_epsilon(U, 1.0)
            assert 0.0 < eps <= 1.0 + 1e-9

    def test_w1_formula_matches_dp(self):
        table = solve(5_000, 1, 1)
        for U in (500, 1_000, 5_000):
            assert table.value(1, U) == pytest.approx(bounds.optimal_p1_work(U, 1.0), abs=2.0)

    def test_exact_p1_scheduler_is_optimal(self):
        table = solve(3_000, 1, 1)
        params = CycleStealingParams(3_000.0, 1.0, 1)
        measured = ExactP1Scheduler().guaranteed_work(params)
        assert measured >= table.value(1, 3_000) - 1.5

    def test_guideline_within_low_order_of_optimal(self):
        """W(S_a^(1)) deviates from W^(1) only by low-order terms."""
        for U in (1_000.0, 10_000.0, 100_000.0):
            params = CycleStealingParams(U, 1.0, 1)
            opt = ExactP1Scheduler().guaranteed_work(params)
            guideline = RosenbergAdaptiveScheduler().guaranteed_work(params)
            assert opt - guideline <= U ** 0.25 + 5.0


class TestDPOptimalDominance:
    """The DP scheduler dominates every other scheduler in the library."""

    #: The DP optimum is computed on the integer time grid; schedulers with
    #: continuous period lengths may beat it by up to roughly one time unit.
    GRID_SLACK = 1.5

    @pytest.mark.parametrize("p", [1, 2, 3])
    def test_dominance(self, small_table, p):
        params = CycleStealingParams(600.0, 1.0, p)
        dp_work = DPOptimalScheduler(small_table).guaranteed_work(params)
        others = [
            EqualizingAdaptiveScheduler(),
            RosenbergAdaptiveScheduler(),
            SinglePeriodScheduler(),
        ]
        for scheduler in others:
            assert dp_work >= scheduler.guaranteed_work(params) - self.GRID_SLACK
        assert (dp_work
                >= RosenbergNonAdaptiveScheduler().guaranteed_work(params) - self.GRID_SLACK)


class TestEqualPeriodOptimality:
    """Sanity check of the Section 3.1 analysis: among equal-period
    non-adaptive schedules, the guideline's period count is essentially the
    best possible."""

    @settings(deadline=None, max_examples=10)
    @given(st.integers(min_value=500, max_value=3_000), st.integers(min_value=1, max_value=3))
    def test_guideline_count_near_best(self, U, p):
        params = CycleStealingParams(float(U), 1.0, p)
        guess = bounds.nonadaptive_num_periods(U, 1.0, p)
        best = max(
            worst_case_nonadaptive_work(EpisodeSchedule.equal_periods(float(U), m), params)
            for m in range(max(1, guess - 8), guess + 9)
        )
        guideline = worst_case_nonadaptive_work(
            EpisodeSchedule.equal_periods(float(U), guess), params)
        assert guideline >= best - 2.0 * math.sqrt(U) * 0.2 - 4.0
