"""Tests for the exact dynamic program (reference and fast solvers)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CycleStealingParams
from repro.analysis import bounds
from repro.core.exceptions import InvalidParameterError
from repro.dp import (
    ValueTable,
    discretize_params,
    extract_episode_schedule,
    extract_period_lengths,
    solve,
    solve_fast,
    solve_for_params,
    solve_reference,
)


class TestSolverAgreement:
    @pytest.mark.parametrize("L,c,p", [(60, 1, 2), (100, 3, 2), (80, 2, 3), (50, 0, 2),
                                       (120, 5, 1), (40, 1, 4)])
    def test_fast_equals_reference(self, L, c, p):
        fast = solve_fast(L, c, p)
        ref = solve_reference(L, c, p)
        assert np.array_equal(fast.values, ref.values)

    @settings(deadline=None, max_examples=25)
    @given(st.integers(min_value=5, max_value=120),
           st.integers(min_value=0, max_value=6),
           st.integers(min_value=0, max_value=3))
    def test_fast_equals_reference_property(self, L, c, p):
        fast = solve_fast(L, c, p)
        ref = solve_reference(L, c, p)
        assert np.array_equal(fast.values, ref.values)

    def test_solve_dispatch(self):
        assert np.array_equal(solve(50, 1, 1, method="fast").values,
                              solve(50, 1, 1, method="reference").values)
        with pytest.raises(InvalidParameterError):
            solve(50, 1, 1, method="bogus")


class TestStructuralProperties:
    """Proposition 4.1 and the Lipschitz fact the fast solver relies on."""

    @pytest.fixture(scope="class")
    def table(self):
        return solve(400, 2, 3)

    def test_p0_row_is_monus(self, table):
        L = np.arange(table.max_lifespan + 1)
        assert np.array_equal(table.values[0], np.maximum(L - 2, 0))

    def test_monotone_in_lifespan(self, table):
        # Proposition 4.1(a)
        diffs = np.diff(table.values, axis=1)
        assert np.all(diffs >= 0)

    def test_nonincreasing_in_interrupts(self, table):
        # Proposition 4.1(b)
        diffs = np.diff(table.values, axis=0)
        assert np.all(diffs <= 0)

    def test_zero_below_threshold(self, table):
        # Proposition 4.1(c): W = 0 for U <= (p+1)c
        for p in range(table.max_interrupts + 1):
            threshold = (p + 1) * table.setup_cost
            assert np.all(table.values[p, :threshold + 1] == 0)

    def test_positive_above_threshold(self, table):
        for p in range(table.max_interrupts + 1):
            threshold = (p + 1) * table.setup_cost
            assert np.all(table.values[p, threshold + p + 1:] > 0)

    def test_lipschitz_in_lifespan(self, table):
        diffs = np.diff(table.values, axis=1)
        assert np.all(diffs <= 1)

    def test_p1_matches_closed_form(self):
        table = solve(20_000, 1, 1)
        for U in (500, 2_000, 10_000, 20_000):
            closed = bounds.optimal_p1_work(U, 1)
            assert table.value(1, U) == pytest.approx(closed, abs=2.0)

    def test_p0_matches_prop41d(self, table):
        assert table.value(0, 100) == 98


class TestValueTableAPI:
    def test_bounds_checking(self, small_table):
        with pytest.raises(InvalidParameterError):
            small_table.value(10, 5)
        with pytest.raises(InvalidParameterError):
            small_table.value(1, 10_000)
        with pytest.raises(InvalidParameterError):
            small_table.value(-1, 5)

    def test_work_curve_read_only(self, small_table):
        curve = small_table.work_curve(1)
        assert curve.shape == (small_table.max_lifespan + 1,)
        with pytest.raises(ValueError):
            curve[0] = 5

    def test_as_oracle(self, small_table):
        oracle = small_table.as_oracle()
        assert oracle(100.0, 1, 1.0) == small_table.value(1, 100)
        assert oracle(100.7, 1, 1.0) == small_table.value(1, 100)
        assert oracle(-5.0, 1, 1.0) == 0.0
        with pytest.raises(InvalidParameterError):
            oracle(100.0, 1, 2.0)

    def test_oracle_clamps_interrupts_and_lifespan(self, small_table):
        oracle = small_table.as_oracle()
        assert oracle(10_000.0, 1, 1.0) == small_table.value(1, small_table.max_lifespan)
        assert oracle(100.0, 99, 1.0) == small_table.value(small_table.max_interrupts, 100)

    def test_params_helper(self, small_table):
        p = small_table.params(max_interrupts=2, lifespan=300)
        assert isinstance(p, CycleStealingParams)
        assert p.lifespan == 300.0 and p.max_interrupts == 2

    def test_input_validation(self):
        with pytest.raises(InvalidParameterError):
            solve(0, 1, 1)
        with pytest.raises(InvalidParameterError):
            solve(10, -1, 1)
        with pytest.raises(InvalidParameterError):
            solve(10, 1, -1)


class TestScheduleExtraction:
    def test_extracted_schedule_covers_lifespan(self, small_table):
        schedule = extract_episode_schedule(small_table, 500, 2)
        assert schedule.total_length == pytest.approx(500.0)

    def test_extracted_schedule_achieves_table_value(self, small_table):
        """The schedule, played against the worst adversary, achieves W^(p)[L]."""
        from repro.schedules import DPOptimalScheduler

        scheduler = DPOptimalScheduler(small_table)
        for p in (1, 2, 3):
            params = CycleStealingParams(lifespan=500.0, setup_cost=1.0, max_interrupts=p)
            measured = scheduler.guaranteed_work(params)
            assert measured == pytest.approx(small_table.value(p, 500), abs=1e-6)

    def test_extract_lengths_p0(self, small_table):
        assert extract_period_lengths(small_table, 123, 0) == [123]

    def test_extract_bounds_checked(self, small_table):
        with pytest.raises(InvalidParameterError):
            extract_period_lengths(small_table, 10_000, 1)
        with pytest.raises(InvalidParameterError):
            extract_period_lengths(small_table, 100, 99)


class TestDiscretization:
    def test_integer_params_pass_through(self):
        params = CycleStealingParams(lifespan=100.0, setup_cost=2.0, max_interrupts=1)
        L, c, grain = discretize_params(params)
        assert (L, c, grain) == (100, 2, 1.0)

    def test_fractional_setup_cost_refined(self):
        params = CycleStealingParams(lifespan=10.0, setup_cost=0.5, max_interrupts=1)
        L, c, grain = discretize_params(params)
        assert c == round(0.5 / grain)
        assert L == int(10.0 / grain)

    def test_zero_cost(self):
        params = CycleStealingParams(lifespan=10.0, setup_cost=0.0, max_interrupts=1)
        L, c, grain = discretize_params(params)
        assert c == 0 and L >= 1

    def test_bad_grain_rejected(self):
        params = CycleStealingParams(lifespan=10.0, setup_cost=1.0, max_interrupts=1)
        with pytest.raises(InvalidParameterError):
            discretize_params(params, grain=-1.0)

    def test_solve_for_params(self):
        params = CycleStealingParams(lifespan=200.0, setup_cost=1.0, max_interrupts=2)
        table = solve_for_params(params)
        assert isinstance(table, ValueTable)
        assert table.max_lifespan == 200
        assert table.max_interrupts == 2
