"""Tests for the expected-output companion submodel."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import EpisodeSchedule
from repro.expected import (
    DeterministicReclaim,
    ExponentialReclaim,
    GeometricReclaim,
    UniformReclaim,
    completion_probabilities,
    expected_work,
    expected_yield_exponential,
    optimal_equal_period_exponential,
    optimize_schedule,
    simulate_expected_work,
)


class TestDistributions:
    def test_exponential(self):
        d = ExponentialReclaim(rate=0.1)
        assert d.survival(0.0) == 1.0
        assert d.survival(10.0) == pytest.approx(math.exp(-1.0))
        assert d.mean() == pytest.approx(10.0)
        with pytest.raises(ValueError):
            ExponentialReclaim(rate=0.0)

    def test_uniform(self):
        d = UniformReclaim(10.0, 20.0)
        assert d.survival(5.0) == 1.0
        assert d.survival(15.0) == 0.5
        assert d.survival(25.0) == 0.0
        assert d.mean() == 15.0
        with pytest.raises(ValueError):
            UniformReclaim(5.0, 5.0)

    def test_deterministic(self):
        d = DeterministicReclaim(10.0)
        assert d.survival(9.0) == 1.0 and d.survival(11.0) == 0.0
        assert d.mean() == 10.0
        assert d.sample(np.random.default_rng(0)) == 10.0
        with pytest.raises(ValueError):
            DeterministicReclaim(0.0)

    def test_geometric(self):
        d = GeometricReclaim(per_slot_probability=0.5, slot=2.0)
        assert d.survival(0.0) == 1.0
        assert d.survival(2.0) == 0.5
        assert d.survival(4.5) == 0.25
        assert d.mean() == pytest.approx(4.0)
        with pytest.raises(ValueError):
            GeometricReclaim(per_slot_probability=1.5)

    @pytest.mark.parametrize("dist", [
        ExponentialReclaim(0.05), UniformReclaim(0.0, 50.0),
        DeterministicReclaim(20.0), GeometricReclaim(0.1, 1.0),
    ])
    def test_survival_monotone_and_bounded(self, dist):
        times = np.linspace(0.0, 100.0, 50)
        surv = dist.survival_array(times)
        assert np.all((0.0 <= surv) & (surv <= 1.0))
        assert np.all(np.diff(surv) <= 1e-12)
        assert dist.describe()

    @pytest.mark.parametrize("dist", [
        ExponentialReclaim(0.05), UniformReclaim(0.0, 50.0), GeometricReclaim(0.1, 1.0),
    ])
    def test_samples_match_mean(self, dist):
        rng = np.random.default_rng(1)
        samples = np.asarray(dist.sample(rng, size=20_000), dtype=float)
        assert samples.mean() == pytest.approx(dist.mean(), rel=0.1)


class TestExpectedWork:
    def test_deterministic_reclaim_counts_completed_periods(self):
        schedule = EpisodeSchedule([5.0, 5.0, 5.0])
        dist = DeterministicReclaim(11.0)
        # First two periods finish by t=10 <= 11; the third does not.
        assert expected_work(schedule, dist, 1.0) == pytest.approx(8.0)

    def test_exponential_formula(self):
        schedule = EpisodeSchedule([10.0, 10.0])
        dist = ExponentialReclaim(rate=0.1)
        expected = 9.0 * math.exp(-1.0) + 9.0 * math.exp(-2.0)
        assert expected_work(schedule, dist, 1.0) == pytest.approx(expected)

    def test_completion_probabilities(self):
        schedule = EpisodeSchedule([5.0, 5.0])
        probs = completion_probabilities(schedule, DeterministicReclaim(7.0))
        assert list(probs) == [1.0, 0.0]

    def test_monte_carlo_agrees_with_exact(self):
        schedule = EpisodeSchedule([8.0, 8.0, 8.0])
        dist = ExponentialReclaim(rate=0.05)
        exact = expected_work(schedule, dist, 1.0)
        approx = simulate_expected_work(schedule, dist, 1.0, num_samples=40_000,
                                        rng=np.random.default_rng(7))
        assert approx == pytest.approx(exact, rel=0.05)

    def test_simulate_validates_samples(self):
        with pytest.raises(ValueError):
            simulate_expected_work(EpisodeSchedule([5.0]), DeterministicReclaim(3.0),
                                   1.0, num_samples=0)

    @settings(deadline=None, max_examples=40)
    @given(st.lists(st.floats(min_value=0.5, max_value=20.0), min_size=1, max_size=10),
           st.floats(min_value=0.01, max_value=1.0))
    def test_expected_work_at_most_uninterrupted(self, lengths, rate):
        schedule = EpisodeSchedule(lengths)
        dist = ExponentialReclaim(rate)
        assert expected_work(schedule, dist, 1.0) <= schedule.work_if_uninterrupted(1.0) + 1e-9


class TestOptimisers:
    def test_yield_zero_for_short_periods(self):
        assert expected_yield_exponential(0.5, 0.1, 1.0) == 0.0

    def test_optimal_equal_period_beats_neighbours(self):
        rate, c = 0.02, 1.0
        best = optimal_equal_period_exponential(rate, c)
        y_best = expected_yield_exponential(best, rate, c)
        for other in (best * 0.7, best * 1.3):
            assert y_best >= expected_yield_exponential(other, rate, c) - 1e-9

    def test_optimal_equal_period_scales_with_rate(self):
        c = 1.0
        frequent = optimal_equal_period_exponential(0.1, c)
        rare = optimal_equal_period_exponential(0.001, c)
        assert rare > frequent

    def test_optimize_schedule_deterministic_deadline(self):
        # With a hard deadline at t=10, the best single period ends at 10.
        schedule, value = optimize_schedule(DeterministicReclaim(10.0), horizon=10.0,
                                            setup_cost=1.0, grid=100)
        assert value == pytest.approx(9.0, abs=0.2)
        assert schedule.total_length == pytest.approx(10.0)

    def test_optimize_schedule_beats_naive_split(self):
        dist = UniformReclaim(0.0, 100.0)
        optimized, value = optimize_schedule(dist, horizon=100.0, setup_cost=1.0, grid=200)
        naive = expected_work(EpisodeSchedule.equal_periods(100.0, 2), dist, 1.0)
        assert value >= naive - 1e-9

    def test_optimize_schedule_validation(self):
        with pytest.raises(ValueError):
            optimize_schedule(DeterministicReclaim(5.0), horizon=0.0, setup_cost=1.0)
        with pytest.raises(ValueError):
            optimize_schedule(DeterministicReclaim(5.0), horizon=10.0, setup_cost=1.0, grid=1)
