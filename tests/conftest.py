"""Shared fixtures for the test-suite."""

import pytest

from repro import CycleStealingParams
from repro.dp import solve


@pytest.fixture(scope="session")
def small_table():
    """A solved DP table (c = 1, L <= 600, p <= 3) reused across tests."""
    return solve(600, 1, 3)


@pytest.fixture
def params_p1():
    """A medium-sized single-interrupt opportunity."""
    return CycleStealingParams(lifespan=400.0, setup_cost=1.0, max_interrupts=1)


@pytest.fixture
def params_p2():
    """A medium-sized two-interrupt opportunity."""
    return CycleStealingParams(lifespan=400.0, setup_cost=1.0, max_interrupts=2)
