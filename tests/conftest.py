"""Shared fixtures for the test-suite."""

import os

import pytest

from repro import CycleStealingParams
from repro.dp import solve

try:
    from hypothesis import settings as _hypothesis_settings

    # Property tests on slow shared runners (CI, coverage instrumentation)
    # flake on hypothesis' wall-clock deadline; the "ci" profile disables it.
    # Only the profile registered here is loaded — an unrelated
    # HYPOTHESIS_PROFILE value from the environment must not abort collection.
    _hypothesis_settings.register_profile("ci", deadline=None)
    if os.environ.get("HYPOTHESIS_PROFILE") == "ci":
        _hypothesis_settings.load_profile("ci")
except ImportError:  # pragma: no cover - hypothesis is a test dependency
    pass


@pytest.fixture(scope="session")
def small_table():
    """A solved DP table (c = 1, L <= 600, p <= 3) reused across tests."""
    return solve(600, 1, 3)


@pytest.fixture
def params_p1():
    """A medium-sized single-interrupt opportunity."""
    return CycleStealingParams(lifespan=400.0, setup_cost=1.0, max_interrupts=1)


@pytest.fixture
def params_p2():
    """A medium-sized two-interrupt opportunity."""
    return CycleStealingParams(lifespan=400.0, setup_cost=1.0, max_interrupts=2)
