"""Queue-journal tests: durability invariants and the state machine.

The journal is the run-service's only mutable state, so these tests pin
its contract hard: atomic whole-file entries, the legal-transition table,
priority/FIFO ordering, backoff eligibility — and a hypothesis
state-machine test driving arbitrary interleavings of
submit/validate/start/complete/fail/cancel plus crash-replay, asserting
the journal always matches an in-memory model (every entry in exactly one
state, no entry lost or duplicated).
"""

import json
import os

import pytest
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.service.journal import (
    ACTIVE_STATES,
    CANCELLABLE_STATES,
    STATES,
    TERMINAL_STATES,
    TRANSITIONS,
    Journal,
    JournalError,
)

SPEC_DATA = {"experiment": {"name": "j-test", "kind": "sweep"},
             "sweep": {"lifespans": [60.0],
                       "schedulers": ["equalizing-adaptive"]}}


@pytest.fixture()
def journal(tmp_path):
    return Journal(str(tmp_path / "_queue"))


class TestSubmit:
    def test_submit_round_trips_the_spec_and_metadata(self, journal):
        entry = journal.submit(SPEC_DATA, tenant="team-a", priority=7)
        loaded = journal.get(entry.entry_id)
        assert loaded == entry
        assert loaded.state == "submitted"
        assert loaded.tenant == "team-a"
        assert loaded.priority == 7
        assert loaded.spec_data == SPEC_DATA
        assert loaded.spec_name == "j-test"
        assert loaded.history[0][0] == "submitted"

    def test_sequence_numbers_increase(self, journal):
        first = journal.submit(SPEC_DATA)
        second = journal.submit(SPEC_DATA)
        assert second.seq == first.seq + 1

    def test_invalid_tenant_rejected(self, journal):
        for bad in ("", "../escape", "a/b", ".hidden", "x" * 65, "sp ace"):
            with pytest.raises(JournalError, match="tenant"):
                journal.submit(SPEC_DATA, tenant=bad)

    def test_non_integer_priority_rejected(self, journal):
        with pytest.raises(JournalError, match="priority"):
            journal.submit(SPEC_DATA, priority="high")
        with pytest.raises(JournalError, match="priority"):
            journal.submit(SPEC_DATA, priority=True)

    def test_duplicate_entry_id_rejected(self, journal):
        entry = journal.submit(SPEC_DATA)
        with pytest.raises(JournalError, match="already exists"):
            journal.submit(SPEC_DATA, entry_id=entry.entry_id)

    def test_non_serialisable_spec_rejected_and_leaves_no_file(self, journal):
        with pytest.raises(JournalError, match="mapping|serialisable"):
            journal.submit({"experiment": {"name": object()}})
        assert journal.entries() == []
        assert [n for n in os.listdir(journal.root)
                if not n.startswith(".")] == []

    def test_non_mapping_spec_rejected(self, journal):
        with pytest.raises(JournalError, match="mapping"):
            journal.submit("not a dict")


class TestTransitions:
    def test_full_happy_path(self, journal):
        entry = journal.submit(SPEC_DATA)
        journal.transition(entry.entry_id, "validated", run_id="run-1")
        journal.transition(entry.entry_id, "running")
        final = journal.transition(entry.entry_id, "published", attempts=1)
        assert final.state == "published"
        assert final.run_id == "run-1"
        assert [state for state, _t in final.history] == \
            ["submitted", "validated", "running", "published"]

    def test_every_illegal_transition_rejected(self, journal):
        """Drive one entry into each state and try every illegal move."""
        paths = {  # shortest legal path into each state
            "submitted": [],
            "validated": ["validated"],
            "running": ["validated", "running"],
            "failed": ["validated", "running", "failed"],
            "published": ["validated", "running", "published"],
            "dead": ["dead"],
            "cancelled": ["cancelled"],
        }
        for state, path in paths.items():
            entry = journal.submit(SPEC_DATA)
            for step in path:
                journal.transition(entry.entry_id, step)
            assert journal.get(entry.entry_id).state == state
            for target in STATES:
                if target in TRANSITIONS[state]:
                    continue
                with pytest.raises(JournalError, match="illegal transition"):
                    journal.transition(entry.entry_id, target)
                assert journal.get(entry.entry_id).state == state

    def test_running_reclaim_is_legal(self, journal):
        entry = journal.submit(SPEC_DATA)
        journal.transition(entry.entry_id, "validated")
        journal.transition(entry.entry_id, "running")
        # A restarted service re-claims a crash leftover: running -> running.
        reclaimed = journal.transition(entry.entry_id, "running")
        assert reclaimed.state == "running"

    def test_unknown_state_rejected(self, journal):
        entry = journal.submit(SPEC_DATA)
        with pytest.raises(JournalError, match="unknown journal state"):
            journal.transition(entry.entry_id, "exploded")

    def test_missing_entry_lists_known_ids(self, journal):
        entry = journal.submit(SPEC_DATA)
        with pytest.raises(JournalError, match=entry.entry_id):
            journal.get("sub-999999-deadbeef")

    def test_failure_metadata_survives_retry_claim(self, journal):
        entry = journal.submit(SPEC_DATA)
        journal.transition(entry.entry_id, "validated")
        journal.transition(entry.entry_id, "running")
        journal.transition(entry.entry_id, "failed", attempts=1,
                           error="Traceback: boom", next_attempt_at=1.0)
        claimed = journal.transition(entry.entry_id, "running")
        assert claimed.attempts == 1
        assert "boom" in claimed.error

    def test_cancel_only_from_cancellable_states(self, journal):
        entry = journal.submit(SPEC_DATA)
        journal.transition(entry.entry_id, "validated")
        journal.transition(entry.entry_id, "running")
        with pytest.raises(JournalError, match="cannot cancel"):
            journal.cancel(entry.entry_id)
        other = journal.submit(SPEC_DATA)
        assert journal.cancel(other.entry_id).state == "cancelled"
        assert set(CANCELLABLE_STATES) == {"submitted", "validated", "failed"}


class TestDurability:
    def test_atomic_writes_leave_no_partial_files(self, journal):
        entry = journal.submit(SPEC_DATA)
        journal.transition(entry.entry_id, "validated")
        names = os.listdir(journal.root)
        assert f"{entry.entry_id}.json" in names
        assert not [n for n in names if n.endswith(".tmp")]

    def test_corrupt_entry_skipped_in_listing_and_raised_in_get(self, journal):
        good = journal.submit(SPEC_DATA)
        bad = journal.submit(SPEC_DATA)
        with open(journal.entry_path(bad.entry_id), "w") as handle:
            handle.write("{ torn json")
        assert [e.entry_id for e in journal.entries()] == [good.entry_id]
        assert journal.corrupt_entries() == [bad.entry_id]
        with pytest.raises(JournalError, match="unreadable|malformed"):
            journal.get(bad.entry_id)

    def test_wrong_schema_version_rejected(self, journal):
        entry = journal.submit(SPEC_DATA)
        path = journal.entry_path(entry.entry_id)
        with open(path) as handle:
            data = json.load(handle)
        data["schema"] = 999
        with open(path, "w") as handle:
            json.dump(data, handle)
        with pytest.raises(JournalError, match="schema"):
            journal.get(entry.entry_id)

    def test_seq_resumes_after_restart(self, journal):
        first = journal.submit(SPEC_DATA)
        reopened = Journal(journal.root)  # a fresh service process
        second = reopened.submit(SPEC_DATA)
        assert second.seq == first.seq + 1

    def test_counts_cover_every_state(self, journal):
        journal.submit(SPEC_DATA)
        counts = journal.counts()
        assert set(counts) == set(STATES)
        assert counts["submitted"] == 1
        assert sum(counts.values()) == 1


class TestRunnable:
    def test_priority_then_fifo_ordering(self, journal):
        low = journal.submit(SPEC_DATA, priority=0)
        high = journal.submit(SPEC_DATA, priority=9)
        mid = journal.submit(SPEC_DATA, priority=5)
        for entry in (low, high, mid):
            journal.transition(entry.entry_id, "validated")
        ready = [e.entry_id for e in journal.runnable()]
        assert ready == [high.entry_id, mid.entry_id, low.entry_id]

    def test_fifo_within_a_priority_band(self, journal):
        first = journal.submit(SPEC_DATA, priority=1)
        second = journal.submit(SPEC_DATA, priority=1)
        for entry in (first, second):
            journal.transition(entry.entry_id, "validated")
        assert [e.entry_id for e in journal.runnable()] == \
            [first.entry_id, second.entry_id]

    def test_failed_entry_waits_for_backoff(self, journal):
        entry = journal.submit(SPEC_DATA)
        journal.transition(entry.entry_id, "validated")
        journal.transition(entry.entry_id, "running")
        journal.transition(entry.entry_id, "failed", attempts=1,
                           next_attempt_at=1000.0)
        assert journal.runnable(now=999.0) == []
        assert [e.entry_id for e in journal.runnable(now=1000.5)] == \
            [entry.entry_id]

    def test_submitted_and_terminal_entries_not_runnable(self, journal):
        journal.submit(SPEC_DATA)  # not yet validated
        done = journal.submit(SPEC_DATA)
        journal.transition(done.entry_id, "validated")
        journal.transition(done.entry_id, "running")
        journal.transition(done.entry_id, "published")
        assert journal.runnable() == []

    def test_running_crash_leftovers_are_runnable(self, journal):
        entry = journal.submit(SPEC_DATA)
        journal.transition(entry.entry_id, "validated")
        journal.transition(entry.entry_id, "running")
        # The service that claimed it was SIGKILLed; a restart must see it.
        assert [e.entry_id for e in journal.runnable()] == [entry.entry_id]


# ----------------------------------------------------------------------
# Property test: arbitrary interleavings keep the journal consistent
# ----------------------------------------------------------------------
class JournalMachine(RuleBasedStateMachine):
    """Model-based test of the journal against an in-memory mirror.

    Rules mirror exactly what the service does — submit, validate, claim,
    complete, fail, cancel — plus ``crash_replay``, which re-opens the
    directory with a fresh :class:`Journal` (a restarted service) and
    checks nothing was lost, duplicated or mutated.  Invariants: the
    on-disk entries match the model one-for-one, every state is legal,
    and terminal entries never move again.
    """

    def __init__(self):
        super().__init__()
        self.model = {}  # entry_id -> expected state

    @initialize(tmp=st.none())
    def setup(self, tmp):
        import tempfile

        self.root = tempfile.mkdtemp(prefix="journal-machine-")
        self.journal = Journal(os.path.join(self.root, "_queue"))

    def ids_in(self, *states):
        return sorted(eid for eid, state in self.model.items()
                      if state in states)

    @rule(priority=st.integers(min_value=-3, max_value=3),
          tenant=st.sampled_from(["default", "team-a", "team-b"]))
    def submit(self, priority, tenant):
        entry = self.journal.submit(SPEC_DATA, tenant=tenant,
                                    priority=priority)
        assert entry.entry_id not in self.model
        self.model[entry.entry_id] = "submitted"

    @precondition(lambda self: self.ids_in("submitted"))
    @rule(data=st.data())
    def validate(self, data):
        entry_id = data.draw(st.sampled_from(self.ids_in("submitted")))
        self.journal.transition(entry_id, "validated", run_id="run-x")
        self.model[entry_id] = "validated"

    @precondition(lambda self: self.ids_in("validated", "failed", "running"))
    @rule(data=st.data())
    def claim(self, data):
        entry_id = data.draw(st.sampled_from(
            self.ids_in("validated", "failed", "running")))
        self.journal.transition(entry_id, "running")
        self.model[entry_id] = "running"

    @precondition(lambda self: self.ids_in("running"))
    @rule(data=st.data())
    def complete(self, data):
        entry_id = data.draw(st.sampled_from(self.ids_in("running")))
        self.journal.transition(entry_id, "published")
        self.model[entry_id] = "published"

    @precondition(lambda self: self.ids_in("running"))
    @rule(data=st.data(), fatal=st.booleans())
    def fail(self, data, fatal):
        entry_id = data.draw(st.sampled_from(self.ids_in("running")))
        state = "dead" if fatal else "failed"
        self.journal.transition(entry_id, state, error="Traceback: boom",
                                attempts=1)
        self.model[entry_id] = state

    @precondition(lambda self: self.ids_in(*CANCELLABLE_STATES))
    @rule(data=st.data())
    def cancel(self, data):
        entry_id = data.draw(st.sampled_from(
            self.ids_in(*CANCELLABLE_STATES)))
        self.journal.cancel(entry_id)
        self.model[entry_id] = "cancelled"

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def illegal_transition_changes_nothing(self, data):
        entry_id = data.draw(st.sampled_from(sorted(self.model)))
        state = self.model[entry_id]
        illegal = [s for s in STATES if s not in TRANSITIONS[state]]
        target = data.draw(st.sampled_from(illegal))
        try:
            self.journal.transition(entry_id, target)
        except JournalError:
            pass
        else:
            raise AssertionError(
                f"{state} -> {target} should have been rejected")

    @rule()
    def crash_replay(self):
        # A restarted service sees the directory cold: same entries, same
        # states, nothing lost or duplicated.
        self.journal = Journal(self.journal.root)

    @invariant()
    def journal_matches_model(self):
        if not hasattr(self, "journal"):
            return
        on_disk = {e.entry_id: e.state for e in self.journal.entries()}
        assert on_disk == self.model
        assert self.journal.corrupt_entries() == []

    @invariant()
    def states_are_legal_and_terminal_entries_have_history(self):
        if not hasattr(self, "journal"):
            return
        for entry in self.journal.entries():
            assert entry.state in STATES
            assert entry.history[0][0] == "submitted"
            assert entry.history[-1][0] == entry.state
            if entry.state in TERMINAL_STATES:
                assert entry.state not in ACTIVE_STATES


TestJournalMachine = JournalMachine.TestCase
TestJournalMachine.settings = settings(max_examples=25,
                                       stateful_step_count=30,
                                       deadline=None)
