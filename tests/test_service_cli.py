"""CLI round-trips for the service commands: serve/submit/status/cancel.

Everything goes through ``repro.cli.main`` exactly as a shell user would —
submit by file path and by stdin, watch the queue with ``status`` (table
and ``--json``), drain with ``serve --drain``, cancel.  The ``--json``
output shape is pinned by ``tests/data/service_status_schema.json`` so
downstream dashboards can rely on it.
"""

import io
import json
import os

import pytest

from repro.cli import main
from repro.service import Journal, status_snapshot
from repro.service.journal import QUEUE_DIRNAME
from repro.service.status import SNAPSHOT_SCHEMA, entry_summary

_HERE = os.path.dirname(__file__)
GOLDEN_SCHEMA = os.path.join(_HERE, "data", "service_status_schema.json")

SPEC_TOML = """\
[experiment]
name = "cli-sweep"
kind = "sweep"
seed = 1
replications = 2

[sweep]
lifespans = [100.0]
interrupts = [1]
schedulers = ["equalizing-adaptive"]
adversaries = ["poisson-owner"]
"""

SPEC_WITH_SUBMISSION = SPEC_TOML + """
[submission]
tenant = "team-a"
priority = 3
"""

SPEC_JSON = json.dumps({
    "experiment": {"name": "cli-json", "kind": "sweep", "seed": 2,
                   "replications": 2},
    "sweep": {"lifespans": [100.0], "interrupts": [1],
              "schedulers": ["equalizing-adaptive"],
              "adversaries": ["poisson-owner"]},
})


def submit(capsys, *argv):
    """Run ``repro submit``; return the printed entry id."""
    assert main(list(argv)) == 0
    out = capsys.readouterr().out
    assert out.startswith("submitted ")
    return out.split()[1]


@pytest.fixture()
def runs_dir(tmp_path):
    return str(tmp_path / "runs")


@pytest.fixture()
def spec_path(tmp_path):
    path = tmp_path / "spec.toml"
    path.write_text(SPEC_TOML)
    return str(path)


class TestSubmit:
    def test_submit_by_path(self, runs_dir, spec_path, capsys):
        entry_id = submit(capsys, "submit", spec_path,
                          "--runs-dir", runs_dir)
        journal = Journal(os.path.join(runs_dir, QUEUE_DIRNAME))
        entry = journal.get(entry_id)
        assert entry.state == "submitted"
        assert entry.spec_name == "cli-sweep"
        assert entry.tenant == "default" and entry.priority == 0

    def test_submit_by_stdin_json(self, runs_dir, capsys, monkeypatch):
        monkeypatch.setattr("sys.stdin", io.StringIO(SPEC_JSON))
        entry_id = submit(capsys, "submit", "-", "--runs-dir", runs_dir)
        journal = Journal(os.path.join(runs_dir, QUEUE_DIRNAME))
        assert journal.get(entry_id).spec_name == "cli-json"

    def test_submit_by_stdin_toml_with_explicit_format(self, runs_dir,
                                                       capsys, monkeypatch):
        monkeypatch.setattr("sys.stdin", io.StringIO(SPEC_TOML))
        entry_id = submit(capsys, "submit", "-", "--format", "toml",
                          "--runs-dir", runs_dir)
        journal = Journal(os.path.join(runs_dir, QUEUE_DIRNAME))
        assert journal.get(entry_id).spec_name == "cli-sweep"

    def test_submission_table_in_spec_sets_tenant_and_priority(
            self, runs_dir, tmp_path, capsys):
        path = tmp_path / "meta.toml"
        path.write_text(SPEC_WITH_SUBMISSION)
        entry_id = submit(capsys, "submit", str(path),
                          "--runs-dir", runs_dir)
        entry = Journal(os.path.join(runs_dir, QUEUE_DIRNAME)).get(entry_id)
        assert entry.tenant == "team-a" and entry.priority == 3

    def test_cli_flags_override_submission_table(self, runs_dir, tmp_path,
                                                 capsys):
        path = tmp_path / "meta.toml"
        path.write_text(SPEC_WITH_SUBMISSION)
        entry_id = submit(capsys, "submit", str(path),
                          "--runs-dir", runs_dir,
                          "--tenant", "team-b", "--priority", "9")
        entry = Journal(os.path.join(runs_dir, QUEUE_DIRNAME)).get(entry_id)
        assert entry.tenant == "team-b" and entry.priority == 9

    def test_submit_missing_file_errors(self, runs_dir, capsys):
        with pytest.raises(SystemExit, match="error:"):
            main(["submit", "/nonexistent/spec.toml",
                  "--runs-dir", runs_dir])

    def test_submit_bad_tenant_errors(self, runs_dir, spec_path):
        with pytest.raises(SystemExit, match="tenant"):
            main(["submit", spec_path, "--runs-dir", runs_dir,
                  "--tenant", "../escape"])


class TestStatus:
    def test_empty_queue_message(self, runs_dir, capsys):
        assert main(["status", "--runs-dir", runs_dir]) == 0
        assert "queue is empty" in capsys.readouterr().out

    def test_status_table_lists_submissions(self, runs_dir, spec_path,
                                            capsys):
        entry_id = submit(capsys, "submit", spec_path,
                          "--runs-dir", runs_dir)
        assert main(["status", "--runs-dir", runs_dir]) == 0
        out = capsys.readouterr().out
        assert entry_id in out
        assert "submitted" in out and "cli-sweep" in out

    def test_status_single_entry_detail(self, runs_dir, spec_path, capsys):
        entry_id = submit(capsys, "submit", spec_path,
                          "--runs-dir", runs_dir)
        assert main(["status", entry_id, "--runs-dir", runs_dir]) == 0
        out = capsys.readouterr().out
        assert f"entry: {entry_id}" in out
        assert "state: submitted" in out

    def test_status_unknown_entry_errors(self, runs_dir, capsys):
        with pytest.raises(SystemExit, match="error:"):
            main(["status", "sub-000001-deadbeef", "--runs-dir", runs_dir])

    def test_status_json_matches_golden_schema(self, runs_dir, spec_path,
                                               capsys):
        """The machine-readable snapshot shape is a frozen contract."""
        submit(capsys, "submit", spec_path, "--runs-dir", runs_dir)
        assert main(["status", "--json", "--runs-dir", runs_dir]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        with open(GOLDEN_SCHEMA) as handle:
            golden = json.load(handle)
        assert snapshot["schema"] == golden["schema_version"] \
            == SNAPSHOT_SCHEMA
        assert sorted(snapshot) == golden["snapshot_keys"]
        assert sorted(snapshot["queue"]) == golden["queue_keys"]
        assert len(snapshot["entries"]) == 1
        for summary in snapshot["entries"]:
            assert sorted(summary) == golden["entry_summary_keys"]

    def test_status_single_entry_json_matches_golden_schema(
            self, runs_dir, spec_path, capsys):
        entry_id = submit(capsys, "submit", spec_path,
                          "--runs-dir", runs_dir)
        assert main(["status", entry_id, "--json",
                     "--runs-dir", runs_dir]) == 0
        summary = json.loads(capsys.readouterr().out)
        with open(GOLDEN_SCHEMA) as handle:
            golden = json.load(handle)
        assert sorted(summary) == golden["entry_summary_keys"]

    def test_snapshot_helper_agrees_with_cli_json(self, runs_dir, spec_path,
                                                  capsys):
        submit(capsys, "submit", spec_path, "--runs-dir", runs_dir)
        assert main(["status", "--json", "--runs-dir", runs_dir]) == 0
        via_cli = json.loads(capsys.readouterr().out)
        journal = Journal(os.path.join(runs_dir, QUEUE_DIRNAME))
        direct = status_snapshot(journal)
        assert via_cli == json.loads(json.dumps(direct))


class TestCancel:
    def test_cancel_submitted_entry(self, runs_dir, spec_path, capsys):
        entry_id = submit(capsys, "submit", spec_path,
                          "--runs-dir", runs_dir)
        assert main(["cancel", entry_id, "--runs-dir", runs_dir]) == 0
        assert f"cancelled {entry_id}" in capsys.readouterr().out
        journal = Journal(os.path.join(runs_dir, QUEUE_DIRNAME))
        assert journal.get(entry_id).state == "cancelled"

    def test_cancel_unknown_entry_errors(self, runs_dir):
        with pytest.raises(SystemExit, match="error:"):
            main(["cancel", "sub-000001-deadbeef", "--runs-dir", runs_dir])

    def test_cancel_published_entry_errors(self, runs_dir, spec_path,
                                           capsys):
        entry_id = submit(capsys, "submit", spec_path,
                          "--runs-dir", runs_dir)
        assert main(["serve", "--runs-dir", runs_dir, "--drain",
                     "--poll-interval", "0.02"]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit, match="cannot cancel"):
            main(["cancel", entry_id, "--runs-dir", runs_dir])


class TestServe:
    def test_serve_drain_publishes_submission(self, runs_dir, spec_path,
                                              capsys):
        entry_id = submit(capsys, "submit", spec_path,
                          "--runs-dir", runs_dir)
        assert main(["serve", "--runs-dir", runs_dir, "--drain",
                     "--poll-interval", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "service stopped: 1 published, 0 dead" in out
        journal = Journal(os.path.join(runs_dir, QUEUE_DIRNAME))
        entry = journal.get(entry_id)
        assert entry.state == "published"
        # The run landed in the tenant namespace and is reportable.
        run_root = os.path.join(runs_dir, entry.tenant, entry.run_id)
        assert os.path.isdir(run_root)
        assert main(["report", entry.run_id, "--runs-dir",
                     os.path.join(runs_dir, entry.tenant)]) == 0
        assert "cli-sweep" in capsys.readouterr().out

    def test_serve_drain_on_empty_queue_exits_immediately(self, runs_dir,
                                                          capsys):
        assert main(["serve", "--runs-dir", runs_dir, "--drain",
                     "--poll-interval", "0.02"]) == 0
        assert "0 published, 0 dead, 0 cancelled, 0 pending" \
            in capsys.readouterr().out

    def test_serve_drain_dead_letters_invalid_spec(self, runs_dir, capsys):
        journal = Journal(os.path.join(runs_dir, QUEUE_DIRNAME))
        entry = journal.submit({"experiment": {"name": "bad",
                                               "kind": "no-such-kind"}})
        assert main(["serve", "--runs-dir", runs_dir, "--drain",
                     "--poll-interval", "0.02"]) == 0
        assert "0 published, 1 dead" in capsys.readouterr().out
        dead = journal.get(entry.entry_id)
        assert dead.state == "dead"
        assert "Traceback" in dead.error

    def test_serve_respects_priority_order(self, runs_dir, tmp_path,
                                           capsys):
        """Higher-priority submissions are validated and claimed first."""
        path = tmp_path / "spec.toml"
        path.write_text(SPEC_TOML)
        low = submit(capsys, "submit", str(path), "--runs-dir", runs_dir,
                     "--tenant", "slow", "--priority", "0")
        high = submit(capsys, "submit", str(path), "--runs-dir", runs_dir,
                      "--tenant", "fast", "--priority", "5")
        assert main(["serve", "--runs-dir", runs_dir, "--drain",
                     "--workers", "1", "--poll-interval", "0.02"]) == 0
        journal = Journal(os.path.join(runs_dir, QUEUE_DIRNAME))
        ran_high = journal.get(high)
        ran_low = journal.get(low)
        assert ran_high.state == ran_low.state == "published"
        started = {state: stamp for state, stamp in ran_high.history}
        started_low = {state: stamp for state, stamp in ran_low.history}
        assert started["running"] <= started_low["running"]


class TestStatusHelpers:
    def test_entry_summary_round_trips_through_json(self, runs_dir,
                                                    spec_path, capsys):
        entry_id = submit(capsys, "submit", spec_path,
                          "--runs-dir", runs_dir)
        journal = Journal(os.path.join(runs_dir, QUEUE_DIRNAME))
        summary = entry_summary(journal.get(entry_id))
        assert json.loads(json.dumps(summary)) == summary
