"""Unit and property tests for positive subtraction and period work."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.arithmetic import (
    is_at_least,
    is_close,
    monus,
    period_work,
    period_work_array,
    positive_subtraction,
    positive_subtraction_array,
)

finite = st.floats(min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False)
nonneg = st.floats(min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False)


class TestPositiveSubtraction:
    def test_basic(self):
        assert positive_subtraction(5.0, 2.0) == 3.0

    def test_clamps_to_zero(self):
        assert positive_subtraction(1.0, 4.0) == 0.0

    def test_equal_operands(self):
        assert positive_subtraction(3.0, 3.0) == 0.0

    def test_accepts_ints(self):
        assert positive_subtraction(7, 2) == 5.0

    def test_monus_is_alias(self):
        assert monus is positive_subtraction

    def test_nan_propagates(self):
        assert math.isnan(positive_subtraction(float("nan"), 1.0))

    @given(finite, finite)
    def test_never_negative(self, x, y):
        assert positive_subtraction(x, y) >= 0.0

    @given(finite, finite)
    def test_matches_max_definition(self, x, y):
        assert positive_subtraction(x, y) == pytest.approx(max(0.0, x - y))

    @given(finite)
    def test_zero_right_identity_for_nonnegative(self, x):
        expected = x if x > 0 else 0.0
        assert positive_subtraction(x, 0.0) == pytest.approx(expected)

    @given(finite, nonneg, nonneg)
    def test_antitone_in_second_argument(self, x, y1, extra):
        assert positive_subtraction(x, y1 + extra) <= positive_subtraction(x, y1) + 1e-9


class TestVectorised:
    def test_array_matches_scalar(self):
        xs = np.array([0.0, 1.0, 5.0, -2.0])
        ys = np.array([1.0, 1.0, 2.0, 3.0])
        out = positive_subtraction_array(xs, ys)
        expected = [positive_subtraction(x, y) for x, y in zip(xs, ys)]
        assert np.allclose(out, expected)

    def test_broadcasting(self):
        out = positive_subtraction_array(np.array([1.0, 2.0, 3.0]), 2.0)
        assert np.allclose(out, [0.0, 0.0, 1.0])

    @given(st.lists(finite, min_size=1, max_size=30), nonneg)
    def test_period_work_array_matches_scalar(self, lengths, c):
        arr = period_work_array(np.array(lengths), c)
        expected = [period_work(t, c) for t in lengths]
        assert np.allclose(arr, expected)


class TestPeriodWork:
    def test_productive_period(self):
        assert period_work(10.0, 3.0) == 7.0

    def test_short_period_yields_nothing(self):
        assert period_work(2.0, 3.0) == 0.0

    def test_negative_setup_cost_rejected(self):
        with pytest.raises(ValueError):
            period_work(10.0, -1.0)

    def test_array_negative_setup_cost_rejected(self):
        with pytest.raises(ValueError):
            period_work_array([1.0, 2.0], -0.5)


class TestTolerantComparisons:
    def test_is_close_exact(self):
        assert is_close(1.0, 1.0)

    def test_is_close_within_tolerance(self):
        assert is_close(1.0, 1.0 + 1e-12)

    def test_is_close_rejects_distinct(self):
        assert not is_close(1.0, 1.1)

    def test_is_at_least_greater(self):
        assert is_at_least(2.0, 1.0)

    def test_is_at_least_close_counts(self):
        assert is_at_least(1.0 - 1e-12, 1.0)

    def test_is_at_least_rejects_smaller(self):
        assert not is_at_least(0.5, 1.0)
