"""Tests for the string-keyed registries in :mod:`repro.registry`."""

import os

import pytest

from repro.core.exceptions import InvalidParameterError
from repro.registry import (
    ADVERSARIES,
    SCENARIO_FAMILIES,
    SCHEDULERS,
    Registry,
    RegistryError,
)


class TestRegistryBasics:
    def test_register_and_create(self):
        reg = Registry("widget")
        reg.register("a", lambda x: ("a", x))
        assert reg.create("a", 1) == ("a", 1)
        assert "a" in reg
        assert reg.names() == ["a"]
        assert len(reg) == 1
        assert reg["a"](2) == ("a", 2)

    def test_decorator_form(self):
        reg = Registry("widget")

        @reg.register("decorated")
        def factory():
            return 42

        assert factory() == 42  # the decorator returns the function
        assert reg.create("decorated") == 42

    def test_unknown_name_lists_known_names(self):
        reg = Registry("widget")
        reg.register("alpha", lambda: None)
        reg.register("beta", lambda: None)
        with pytest.raises(RegistryError) as excinfo:
            reg.create("gamma")
        message = str(excinfo.value)
        assert "gamma" in message and "alpha" in message and "beta" in message

    def test_registry_error_is_invalid_parameter_error(self):
        # Callers catching the library's parameter errors keep working.
        assert issubclass(RegistryError, InvalidParameterError)

    def test_duplicate_registration_rejected(self):
        reg = Registry("widget")
        reg.register("x", lambda: 1)
        with pytest.raises(RegistryError):
            reg.register("x", lambda: 2)
        reg.register("x", lambda: 3, overwrite=True)
        assert reg.create("x") == 3

    def test_bad_names_and_factories_rejected(self):
        reg = Registry("widget")
        with pytest.raises(RegistryError):
            reg.register("", lambda: None)
        with pytest.raises(RegistryError):
            reg.register(3, lambda: None)
        with pytest.raises(RegistryError):
            reg.register("y", "not-callable")

    def test_mapping_iteration(self):
        reg = Registry("widget")
        reg.register("b", lambda: 2)
        reg.register("a", lambda: 1)
        assert sorted(reg) == ["a", "b"]
        assert {name: factory() for name, factory in reg.items()} \
            == {"a": 1, "b": 2}

    def test_unregister(self):
        reg = Registry("widget")
        reg.register("gone", lambda: None)
        reg.unregister("gone")
        assert "gone" not in reg
        reg.unregister("never-there")  # no-op, no error

    def test_validate_reports_every_unknown_name(self):
        reg = Registry("widget")
        reg.register("ok", lambda: None)
        reg.validate(["ok"])  # no error
        with pytest.raises(RegistryError) as excinfo:
            reg.validate(["ok", "bad1", "bad2"], context="test-context")
        message = str(excinfo.value)
        assert "bad1" in message and "bad2" in message
        assert "test-context" in message


class TestBuiltinRegistries:
    def test_register_populates_first_so_duplicates_cannot_shadow_builtins(self):
        # Registering a built-in name must collide even when register() is
        # the first-ever call on the registry (lazy population must run
        # before the duplicate check, not after).
        import subprocess
        import sys

        code = (
            "from repro.registry import SCHEDULERS, RegistryError\n"
            "try:\n"
            "    SCHEDULERS.register('fixed-period', lambda params: None)\n"
            "except RegistryError:\n"
            "    print('COLLIDED')\n"
        )
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        out = subprocess.run([sys.executable, "-c", code],
                             env={**os.environ,
                                  "PYTHONPATH": os.path.abspath(src)},
                             capture_output=True, text=True)
        assert out.stdout.strip() == "COLLIDED", out.stderr

    def test_lazy_population_covers_builtins(self):
        assert "equalizing-adaptive" in SCHEDULERS
        assert "dp-optimal" in SCHEDULERS
        assert "poisson-owner" in ADVERSARIES
        assert "laptop" in SCENARIO_FAMILIES and "diurnal" in SCENARIO_FAMILIES

    def test_grid_views_are_the_registries(self):
        from repro.experiments.grid import ADVERSARY_FACTORIES, SCHEDULER_FACTORIES

        assert SCHEDULER_FACTORIES is SCHEDULERS
        assert ADVERSARY_FACTORIES is ADVERSARIES

    def test_downstream_registration_reaches_the_sweep_layer(self):
        from repro.core.params import CycleStealingParams
        from repro.experiments.grid import make_scheduler
        from repro.schedules import SinglePeriodScheduler

        SCHEDULERS.register("test-only-scheduler",
                            lambda params: SinglePeriodScheduler(),
                            overwrite=True)
        try:
            params = CycleStealingParams(lifespan=50.0, setup_cost=1.0,
                                         max_interrupts=1)
            scheduler = make_scheduler("test-only-scheduler", params)
            assert isinstance(scheduler, SinglePeriodScheduler)
        finally:
            SCHEDULERS.unregister("test-only-scheduler")

    def test_dp_optimal_factory_uses_integer_grid(self):
        from repro.core.params import CycleStealingParams
        from repro.experiments.grid import make_scheduler

        params = CycleStealingParams(lifespan=60.0, setup_cost=1.0,
                                     max_interrupts=1)
        scheduler = make_scheduler("dp-optimal", params)
        assert hasattr(scheduler, "episode_schedule")
        with pytest.raises(ValueError):
            make_scheduler("dp-optimal",
                           CycleStealingParams(lifespan=60.5, setup_cost=1.0,
                                               max_interrupts=1))
