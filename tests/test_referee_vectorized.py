"""The vectorized referees against their retained reference implementations.

The perf overhaul rewrote the two exact worst-case kernels —
:func:`repro.core.game.guaranteed_adaptive_work` (level-ordered iterative
minimax) and :func:`repro.core.work.worst_case_nonadaptive_pattern`
(vectorized prefix top-(p−1) accounting) — while keeping the readable
recursive/heap formulations as references.  These tests pin the pairs to
each other to 1e-9 on random schedules and on every registered scheduler.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CycleStealingParams, EpisodeSchedule
from repro.core.game import (
    guaranteed_adaptive_work,
    guaranteed_adaptive_work_reference,
)
from repro.core.work import (
    nonadaptive_opportunity_work,
    worst_case_nonadaptive_pattern,
    worst_case_nonadaptive_pattern_reference,
)
from repro.experiments.grid import make_scheduler
from repro.registry import SCHEDULERS


def _rel_close(a, b, tol=1e-9):
    return abs(a - b) <= tol * max(1.0, abs(a), abs(b))


class _WeightedSplitScheduler:
    """Deterministic adaptive scheduler driven by an arbitrary weight list.

    Splits every residual into periods proportional to the (positive)
    weights — a pure function of ``(residual, p, c)`` as the referee
    protocol requires, yet with arbitrary, hypothesis-chosen period
    structure (including unproductive periods shorter than ``c``).
    """

    name = "weighted-split"

    def __init__(self, weights):
        self._weights = np.asarray(weights, dtype=float)

    def episode_schedule(self, residual, interrupts_remaining, setup_cost):
        take = max(1, min(self._weights.size,
                          1 + interrupts_remaining))
        weights = self._weights[:take]
        return EpisodeSchedule(residual * weights / weights.sum())


class TestGuaranteedAdaptiveWorkEquivalence:
    @settings(deadline=None, max_examples=60)
    @given(st.lists(st.floats(min_value=0.05, max_value=10.0),
                    min_size=1, max_size=8),
           st.integers(min_value=0, max_value=3),
           st.floats(min_value=25.0, max_value=5000.0),
           st.floats(min_value=0.0, max_value=4.0))
    def test_random_schedules_match_reference(self, weights, p, lifespan, c):
        scheduler = _WeightedSplitScheduler(weights)
        params = CycleStealingParams(lifespan=lifespan, setup_cost=c,
                                     max_interrupts=p)
        fast = guaranteed_adaptive_work(scheduler, params)
        reference = guaranteed_adaptive_work_reference(scheduler, params)
        assert _rel_close(fast, reference), (fast, reference)

    @pytest.mark.parametrize("name", sorted(SCHEDULERS.names()))
    @pytest.mark.parametrize("lifespan,p", [(200, 1), (400, 2), (801, 3)])
    def test_registered_schedulers_match_reference(self, name, lifespan, p):
        params = CycleStealingParams(lifespan=float(lifespan), setup_cost=1.0,
                                     max_interrupts=p)
        scheduler = make_scheduler(name, params)
        if not hasattr(scheduler, "episode_schedule"):
            pytest.skip(f"{name} is purely non-adaptive")
        fast = guaranteed_adaptive_work(scheduler, params)
        reference = guaranteed_adaptive_work_reference(scheduler, params)
        assert _rel_close(fast, reference), (name, fast, reference)

    def test_zero_interrupts_and_degenerate_lifespan(self):
        scheduler = _WeightedSplitScheduler([1.0, 2.0])
        p0 = CycleStealingParams(lifespan=50.0, setup_cost=1.0, max_interrupts=0)
        assert guaranteed_adaptive_work(scheduler, p0) == \
            guaranteed_adaptive_work_reference(scheduler, p0)

    def test_batch_construction_agrees_with_scalar_referee(self):
        """The kernel's episode_schedule_batch path must not change values."""
        from repro.schedules import EqualizingAdaptiveScheduler

        params = CycleStealingParams(lifespan=3000.0, setup_cost=2.0,
                                     max_interrupts=3)
        fast = guaranteed_adaptive_work(EqualizingAdaptiveScheduler(), params)
        reference = guaranteed_adaptive_work_reference(
            EqualizingAdaptiveScheduler(), params)
        assert _rel_close(fast, reference)


class TestWorstCasePatternEquivalence:
    @settings(deadline=None, max_examples=120)
    @given(st.lists(st.floats(min_value=0.2, max_value=20.0),
                    min_size=1, max_size=14),
           st.integers(min_value=0, max_value=5),
           st.floats(min_value=0.0, max_value=3.0))
    def test_work_matches_reference(self, lengths, p, c):
        s = EpisodeSchedule(lengths)
        params = CycleStealingParams(lifespan=s.total_length, setup_cost=c,
                                     max_interrupts=p)
        pattern_fast, fast = worst_case_nonadaptive_pattern(s, params)
        pattern_ref, reference = worst_case_nonadaptive_pattern_reference(s, params)
        assert _rel_close(fast, reference), (fast, reference)
        # Both reported patterns must evaluate to their reported minimum.
        assert nonadaptive_opportunity_work(s, params, pattern_fast) == \
            pytest.approx(fast, abs=1e-6)
        assert nonadaptive_opportunity_work(s, params, pattern_ref) == \
            pytest.approx(reference, abs=1e-6)

    @settings(deadline=None, max_examples=60)
    @given(st.lists(st.sampled_from([1.5, 1.5, 2.0, 2.0 + 1e-10, 4.0]),
                    min_size=2, max_size=10),
           st.integers(min_value=1, max_value=4))
    def test_duplicate_losses_attribute_distinct_periods(self, lengths, p):
        """Near-equal losses were mis-attributed by the old 1e-9 re-matching."""
        s = EpisodeSchedule(lengths)
        params = CycleStealingParams(lifespan=s.total_length, setup_cost=1.0,
                                     max_interrupts=p)
        for impl in (worst_case_nonadaptive_pattern,
                     worst_case_nonadaptive_pattern_reference):
            pattern, work = impl(s, params)
            indices = list(pattern.indices)
            assert len(indices) == len(set(indices))  # distinct periods
            assert all(1 <= i <= s.num_periods for i in indices)
            assert nonadaptive_opportunity_work(s, params, pattern) == \
                pytest.approx(work, abs=1e-6)

    def test_reference_heap_carries_indices(self):
        """Two exactly-equal large losses: the killed set stays valid."""
        s = EpisodeSchedule([5.0, 5.0, 1.2, 5.0, 1.2, 30.0])
        params = CycleStealingParams(lifespan=s.total_length, setup_cost=1.0,
                                     max_interrupts=3)
        pattern, work = worst_case_nonadaptive_pattern_reference(s, params)
        assert len(set(pattern.indices)) == pattern.count
        assert nonadaptive_opportunity_work(s, params, pattern) == \
            pytest.approx(work, abs=1e-9)

    def test_large_schedule_smoke(self):
        rng = np.random.default_rng(7)
        s = EpisodeSchedule(rng.uniform(0.5, 12.0, 4000))
        params = CycleStealingParams(lifespan=s.total_length, setup_cost=1.0,
                                     max_interrupts=7)
        _, fast = worst_case_nonadaptive_pattern(s, params)
        _, reference = worst_case_nonadaptive_pattern_reference(s, params)
        assert _rel_close(fast, reference)
