"""Tests for the analysis layer: bounds, gaps, tables and sweeps."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import CycleStealingParams, EpisodeSchedule
from repro.analysis import (
    adaptive_guarantee_sweep,
    bounds,
    measure_guaranteed_work,
    nonadaptive_guarantee_sweep,
    optimality_gap,
    play_out_sweep,
    scheduler_comparison_sweep,
    table1_rows,
    table2_rows,
)
from repro.adversary import LastPeriodAdversary, NeverInterruptAdversary
from repro.schedules import (
    EqualizingAdaptiveScheduler,
    RosenbergNonAdaptiveScheduler,
    SinglePeriodScheduler,
)

lifespans = st.floats(min_value=10.0, max_value=1e6, allow_nan=False, allow_infinity=False)
costs = st.floats(min_value=0.01, max_value=100.0, allow_nan=False, allow_infinity=False)
budgets = st.integers(min_value=0, max_value=10)


class TestBounds:
    def test_zero_work_threshold(self):
        assert bounds.zero_work_threshold(2.0, 3) == 8.0

    def test_p0_optimal(self):
        assert bounds.p0_optimal_work(100.0, 1.0) == 99.0
        assert bounds.p0_optimal_work(0.5, 1.0) == 0.0

    def test_nonadaptive_parameters(self):
        assert bounds.nonadaptive_num_periods(10_000.0, 1.0, 4) == 200
        assert bounds.nonadaptive_period_length(10_000.0, 1.0, 4) == pytest.approx(50.0)
        assert bounds.nonadaptive_num_periods(10_000.0, 1.0, 0) == 1

    def test_nonadaptive_guarantee_values(self):
        # U - 2*sqrt(pcU) + pc for the derived form.
        assert bounds.nonadaptive_guarantee(10_000.0, 1.0, 1) == pytest.approx(9_801.0)
        assert bounds.nonadaptive_guarantee_paper(10_000.0, 1.0, 1) == pytest.approx(
            10_000.0 - math.sqrt(2 * 10_000.0) + 1.0)
        assert bounds.nonadaptive_guarantee(10_000.0, 1.0, 0) == pytest.approx(9_999.0)

    def test_adaptive_loss_coefficient(self):
        assert bounds.adaptive_loss_coefficient(0) == 0.0
        assert bounds.adaptive_loss_coefficient(1) == 1.0
        assert bounds.adaptive_loss_coefficient(2) == 1.5
        assert bounds.adaptive_loss_coefficient(3) == 1.75

    def test_adaptive_guarantee(self):
        U, c = 10_000.0, 1.0
        assert bounds.adaptive_guarantee(U, c, 1) == pytest.approx(U - math.sqrt(2 * U))
        assert bounds.adaptive_guarantee(U, c, 0) == pytest.approx(U - c)
        with_slack = bounds.adaptive_guarantee(U, c, 2, include_low_order=True)
        assert with_slack < bounds.adaptive_guarantee(U, c, 2)

    def test_optimal_p1_closed_forms(self):
        U, c = 10_000.0, 1.0
        m = bounds.optimal_p1_num_periods(U, c)
        eps = bounds.optimal_p1_epsilon(U, c)
        assert m == math.ceil(math.sqrt(2 * U / c - 1.75) - 0.5)
        assert 0.0 < eps <= 1.0
        assert bounds.optimal_p1_work(U, c) == pytest.approx(U - math.sqrt(2 * U) - 0.5)

    def test_optimal_p1_period_lengths(self):
        U, c = 10_000.0, 1.0
        m = bounds.optimal_p1_num_periods(U, c)
        assert bounds.optimal_p1_period_length(m, U, c) == pytest.approx(
            bounds.optimal_p1_period_length(m - 1, U, c))
        assert bounds.optimal_p1_period_length(1, U, c) == pytest.approx(
            math.sqrt(2 * U), rel=0.05)
        with pytest.raises(ValueError):
            bounds.optimal_p1_period_length(0, U, c)

    def test_guideline_p1(self):
        U, c = 10_000.0, 1.0
        assert bounds.guideline_p1_num_periods(U, c) == math.floor(math.sqrt(2 * U)) + 2
        assert bounds.guideline_p1_period_length(1, U, c) == pytest.approx(
            math.sqrt(2 * U) + 2.5)
        with pytest.raises(ValueError):
            bounds.guideline_p1_period_length(0, U, c)

    def test_closed_form_optimal_work_threshold(self):
        assert bounds.closed_form_optimal_work(2.0, 1.0, 2) == 0.0
        assert bounds.closed_form_optimal_work(100.0, 1.0, 0) == 99.0

    @given(lifespans, costs, budgets)
    def test_monotone_in_interrupts(self, U, c, p):
        """More interrupts can never raise the closed-form guarantees."""
        assert (bounds.adaptive_guarantee(U, c, p + 1)
                <= bounds.adaptive_guarantee(U, c, p) + 1e-6)
        assert (bounds.closed_form_optimal_work(U, c, p + 1)
                <= bounds.closed_form_optimal_work(U, c, p) + 1e-6)

    @given(lifespans, costs, budgets)
    def test_bounds_within_lifespan(self, U, c, p):
        for fn in (bounds.nonadaptive_guarantee, bounds.nonadaptive_guarantee_paper,
                   bounds.adaptive_guarantee, bounds.closed_form_optimal_work):
            val = fn(U, c, p)
            assert 0.0 <= val <= U + 1e-9

    @given(lifespans, budgets)
    def test_adaptive_beats_nonadaptive_estimate(self, U, p):
        """Adaptive loses at most as much as non-adaptive (leading order)."""
        c = 1.0
        if U > 100 * (p + 1):
            assert (bounds.adaptive_guarantee(U, c, p)
                    >= bounds.nonadaptive_guarantee(U, c, p) - 1e-6)


class TestGap:
    def test_measure_adaptive_and_nonadaptive(self):
        params = CycleStealingParams(300.0, 1.0, 1)
        adaptive = measure_guaranteed_work(EqualizingAdaptiveScheduler(), params)
        nonadaptive = measure_guaranteed_work(RosenbergNonAdaptiveScheduler(), params)
        assert adaptive > nonadaptive > 0.0

    def test_mode_selection(self):
        params = CycleStealingParams(300.0, 1.0, 1)
        s = SinglePeriodScheduler()     # implements both protocols
        assert measure_guaranteed_work(s, params, mode="adaptive") == pytest.approx(0.0)
        assert measure_guaranteed_work(s, params, mode="nonadaptive") == pytest.approx(0.0)

    def test_rejects_non_scheduler(self):
        params = CycleStealingParams(300.0, 1.0, 1)
        with pytest.raises(TypeError):
            measure_guaranteed_work(object(), params)

    def test_gap_report(self, small_table):
        params = CycleStealingParams(600.0, 1.0, 2)
        report = optimality_gap(EqualizingAdaptiveScheduler(), params, small_table)
        assert report.optimal_work == small_table.value(2, 600)
        # The DP optimum lives on the integer grid, so a continuous scheduler
        # may overshoot it by up to ~1 time unit of work.
        assert report.gap >= -1.5
        assert report.relative_gap < 0.05
        assert report.normalized_gap < 0.5
        assert 0.9 < report.efficiency <= 1.0
        assert report.scheduler == "equalizing-adaptive"

    def test_gap_report_without_table(self):
        params = CycleStealingParams(300.0, 1.0, 1)
        report = optimality_gap(EqualizingAdaptiveScheduler(), params)
        assert report.optimal_work is None
        assert report.gap is None and report.relative_gap is None
        assert report.normalized_gap is None


class TestTable1:
    def test_rows_structure(self):
        params = CycleStealingParams(100.0, 1.0, 2)
        schedule = EqualizingAdaptiveScheduler().episode_schedule(100.0, 2, 1.0)
        rows = table1_rows(schedule, params)
        assert len(rows) == schedule.num_periods + 1
        assert rows[0]["option"] == "no interrupt"
        assert rows[0]["opportunity_work"] == pytest.approx(
            schedule.work_if_uninterrupted(1.0))

    def test_interrupt_rows_match_formula(self):
        """Row k: work = T_{k-1} - (k-1)c + W^(p-1)[U - T_k] (Table 1)."""
        params = CycleStealingParams(100.0, 1.0, 1)
        schedule = EpisodeSchedule([40.0, 35.0, 25.0])
        oracle = lambda L, q, c: max(0.0, L - c) if q == 0 else 0.0  # noqa: E731
        rows = table1_rows(schedule, params, oracle=oracle)
        row2 = rows[2]   # interrupt during period 2
        expected_episode_work = 39.0
        expected_residual = 100.0 - 75.0
        assert row2["episode_work"] == pytest.approx(expected_episode_work)
        assert row2["residual_lifespan"] == pytest.approx(expected_residual)
        assert row2["opportunity_work"] == pytest.approx(expected_episode_work + 24.0)

    def test_last_interrupt_leaves_nothing(self):
        params = CycleStealingParams(100.0, 1.0, 1)
        schedule = EpisodeSchedule([40.0, 35.0, 25.0])
        rows = table1_rows(schedule, params)
        assert rows[-1]["residual_lifespan"] == pytest.approx(0.0)


class TestTable2:
    def test_rows_contents(self):
        rows = table2_rows([1_000.0, 10_000.0], 1.0, measure=False)
        assert len(rows) == 2
        row = rows[1]
        assert row["opt_num_periods"] == bounds.optimal_p1_num_periods(10_000.0, 1.0)
        assert row["guideline_num_periods"] == bounds.guideline_p1_num_periods(10_000.0, 1.0)
        assert "opt_work_measured" not in row

    def test_measured_close_to_formula(self):
        rows = table2_rows([5_000.0], 1.0, measure=True)
        row = rows[0]
        assert row["opt_work_measured"] == pytest.approx(row["opt_work_formula"], abs=3.0)
        assert row["guideline_work_measured"] <= row["opt_work_measured"] + 1e-6

    def test_dp_values_included(self):
        rows = table2_rows([500.0], 1.0, measure=False, dp_values={500.0: 468.0})
        assert rows[0]["dp_optimal_work"] == 468.0


class TestSweeps:
    def test_nonadaptive_sweep(self):
        rows = nonadaptive_guarantee_sweep([500.0, 1_000.0], 1.0, [1, 2])
        assert len(rows) == 4
        for row in rows:
            assert row["measured_work"] == pytest.approx(row["predicted_work"], abs=6.0)
            assert 0.0 < row["efficiency"] <= 1.0

    def test_adaptive_sweep(self):
        rows = adaptive_guarantee_sweep([500.0], 1.0, [1, 2])
        assert len(rows) == 2
        for row in rows:
            assert row["measured_work"] <= row["lifespan"]
            assert row["loss_coefficient"] in (1.0, 1.5)

    def test_scheduler_comparison_sweep(self, small_table):
        params = [CycleStealingParams(600.0, 1.0, 2)]
        rows = scheduler_comparison_sweep(
            {"eq": EqualizingAdaptiveScheduler(), "single": SinglePeriodScheduler()},
            params, dp_table=small_table)
        assert len(rows) == 2
        by_name = {r["scheduler"]: r for r in rows}
        assert by_name["eq"]["guaranteed_work"] > by_name["single"]["guaranteed_work"]
        # Integer-grid optimum vs continuous scheduler: the gap may be
        # marginally negative (see TestGap.test_gap_report).
        assert by_name["eq"]["gap"] >= -1.5

    def test_play_out_sweep(self):
        params = CycleStealingParams(300.0, 1.0, 1)
        rows = play_out_sweep(
            {"eq": EqualizingAdaptiveScheduler()},
            {"never": NeverInterruptAdversary(), "last": LastPeriodAdversary()},
            params)
        assert len(rows) == 2
        by_adv = {r["adversary"]: r for r in rows}
        assert by_adv["never"]["work"] >= by_adv["last"]["work"]
