"""Fault-injection harness for the run-service.

The service's whole design claim is that a SIGKILL at *any* instant is
recoverable: the journal and the run store only ever expose whole files,
so a restarted service re-claims what the disk says was running and
publishes byte-identical results.  These tests kill a real ``repro
serve`` subprocess mid-run and mid-journal-transition, drive entries
through retry → backoff → dead-letter with the ``REPRO_TEST_SERVICE_FAULT``
hook, and pin the shared-table acceptance criterion: two concurrent
submissions sharing a DP key publish the shared-memory table exactly
once per service.
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.request

import pytest

from repro.reporting import render_run_report
from repro.runstore import Run, run_spec
from repro.service import Journal, JournalError, RunService
from repro.service.journal import QUEUE_DIRNAME
from repro.specs import default_run_id, parse_spec

SLOW_SPEC = {
    "experiment": {"name": "fault-slow", "kind": "scenario", "seed": 0,
                   "replications": 30, "backend": "event"},
    "scenario": {"family": "laptop",
                 "schedulers": ["equalizing-adaptive", "rosenberg-adaptive",
                                "fixed-period", "single-period",
                                "equal-split", "geometric"]},
}

FAST_SPEC = {
    "experiment": {"name": "fault-fast", "kind": "sweep", "seed": 1,
                   "replications": 2},
    "sweep": {"lifespans": [100.0], "interrupts": [1],
              "schedulers": ["equalizing-adaptive"],
              "adversaries": ["poisson-owner"]},
}

#: Sweep with the DP optimum enabled: executing it publishes one shared
#: (lifespan, cost, interrupts, method) table per lifespan.
DP_SPEC = {
    "experiment": {"name": "fault-dp", "kind": "sweep", "seed": 1,
                   "replications": 2},
    "sweep": {"lifespans": [60.0], "interrupts": [1],
              "schedulers": ["equalizing-adaptive"],
              "adversaries": ["poisson-owner"], "optimal": True},
}


def _service_env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep \
        + env.get("PYTHONPATH", "")
    env.pop("REPRO_TEST_SERVICE_FAULT", None)
    env.pop("REPRO_TEST_JOURNAL_DELAY", None)
    return env


def _serve_cmd(runs_dir):
    return [sys.executable, "-m", "repro", "serve", "--runs-dir",
            str(runs_dir), "--drain", "--poll-interval", "0.02"]


def _drain(runs_dir, **kwargs):
    """Run an in-process service to completion; return it for stats."""
    service = RunService(str(runs_dir), poll_interval=0.02, **kwargs)
    service.serve(drain=True, max_runtime=240.0)
    return service


class TestKillService:
    """SIGKILL a real `repro serve` subprocess at the nasty instants."""

    def test_sigkill_mid_run_then_restart_publishes_byte_identical(
            self, tmp_path):
        runs_dir = tmp_path / "runs"
        journal = Journal(str(runs_dir / QUEUE_DIRNAME))
        entry = journal.submit(SLOW_SPEC)
        run_id = default_run_id(parse_spec(SLOW_SPEC))

        proc = subprocess.Popen(_serve_cmd(runs_dir), env=_service_env(),
                                stdout=subprocess.DEVNULL,
                                stderr=subprocess.DEVNULL)
        points_dir = runs_dir / "default" / run_id / "points"
        try:
            # Kill once at least one point shard is durable (the
            # interesting window); if the service wins the race and
            # drains first, the restart degrades to a no-op resume and
            # the byte-identity assertion still holds.
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline and proc.poll() is None:
                if points_dir.is_dir() \
                        and any(points_dir.glob("point-*.npz")):
                    break
                time.sleep(0.02)
            killed = proc.poll() is None
            if killed:
                proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=60)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup on failure
                proc.kill()
                proc.wait()

        if killed:
            state = journal.get(entry.entry_id).state
            assert state in ("submitted", "validated", "running")

        # A fresh service process must pick the entry up from the journal
        # alone and finish it.
        subprocess.run(_serve_cmd(runs_dir), env=_service_env(), check=True,
                       timeout=240, stdout=subprocess.DEVNULL,
                       stderr=subprocess.DEVNULL)
        final = journal.get(entry.entry_id)
        assert final.state == "published"
        assert final.run_id == run_id

        resumed = Run(str(runs_dir / "default" / run_id))
        assert resumed.status == "complete"
        reference = run_spec(parse_spec(SLOW_SPEC), runs_dir=tmp_path / "ref",
                             run_id=run_id)
        assert render_run_report(resumed) == render_run_report(reference)

    def test_sigkill_during_journal_transition_loses_nothing(self, tmp_path):
        # REPRO_TEST_JOURNAL_DELAY opens a kill window between staging an
        # entry's new contents and the atomic os.replace: the service
        # touches `.transitioning` and sleeps.  A SIGKILL inside the
        # window must leave the previous whole entry file — nothing
        # lost, duplicated or torn.
        runs_dir = tmp_path / "runs"
        journal = Journal(str(runs_dir / QUEUE_DIRNAME))
        entry = journal.submit(FAST_SPEC)
        before = {e.entry_id: e.state for e in journal.entries()}

        env = _service_env()
        env["REPRO_TEST_JOURNAL_DELAY"] = "120"
        proc = subprocess.Popen(_serve_cmd(runs_dir), env=env,
                                stdout=subprocess.DEVNULL,
                                stderr=subprocess.DEVNULL)
        marker = runs_dir / QUEUE_DIRNAME / ".transitioning"
        try:
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline and proc.poll() is None:
                if marker.exists():
                    break
                time.sleep(0.02)
            assert marker.exists(), "journal transition never started"
            assert proc.poll() is None, "service exited before the kill"
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=60)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup on failure
                proc.kill()
                proc.wait()

        # The interrupted transition never happened: same entry set, same
        # states, no corrupt files, no stray duplicates.
        assert {e.entry_id: e.state for e in journal.entries()} == before
        assert journal.corrupt_entries() == []
        files = [name for name in os.listdir(journal.root)
                 if name.endswith(".json")]
        assert files == [f"{entry.entry_id}.json"]

        # And the entry is still live: a restart (without the delay hook)
        # drains it to published.
        subprocess.run(_serve_cmd(runs_dir), env=_service_env(), check=True,
                       timeout=240, stdout=subprocess.DEVNULL,
                       stderr=subprocess.DEVNULL)
        assert journal.get(entry.entry_id).state == "published"

    def test_crash_leftover_running_entry_is_reclaimed(self, tmp_path):
        # Simulate a service that died after claiming: the journal says
        # `running` but no worker exists.  A fresh service must re-claim
        # (running -> running) and execute with resume semantics.
        runs_dir = tmp_path / "runs"
        journal = Journal(str(runs_dir / QUEUE_DIRNAME))
        entry = journal.submit(FAST_SPEC)
        run_id = default_run_id(parse_spec(FAST_SPEC))
        journal.transition(entry.entry_id, "validated", run_id=run_id)
        journal.transition(entry.entry_id, "running")

        _drain(runs_dir)
        final = journal.get(entry.entry_id)
        assert final.state == "published"
        assert Run(str(runs_dir / "default" / run_id)).status == "complete"


class TestInjectedFaults:
    """retry -> capped backoff -> dead-letter, via REPRO_TEST_SERVICE_FAULT."""

    def test_persistent_fault_retries_then_dead_letters(self, tmp_path,
                                                        monkeypatch):
        monkeypatch.setenv("REPRO_TEST_SERVICE_FAULT", "fault-fast:99")
        runs_dir = tmp_path / "runs"
        journal = Journal(str(runs_dir / QUEUE_DIRNAME))
        entry = journal.submit(FAST_SPEC)

        _drain(runs_dir, max_retries=2, backoff_base=0.01, backoff_cap=0.05)
        dead = journal.get(entry.entry_id)
        assert dead.state == "dead"
        # First attempt + max_retries retries, then parked.
        assert dead.attempts == 3
        assert "Traceback" in dead.error
        assert "injected service fault" in dead.error
        states = [state for state, _t in dead.history]
        assert states.count("failed") == 2
        assert states[-1] == "dead"

    def test_transient_fault_recovers_and_publishes(self, tmp_path,
                                                    monkeypatch):
        monkeypatch.setenv("REPRO_TEST_SERVICE_FAULT", "fault-fast:1")
        runs_dir = tmp_path / "runs"
        journal = Journal(str(runs_dir / QUEUE_DIRNAME))
        entry = journal.submit(FAST_SPEC)

        _drain(runs_dir, backoff_base=0.01, backoff_cap=0.05)
        final = journal.get(entry.entry_id)
        assert final.state == "published"
        assert final.attempts == 2  # one failure, then the retry landed
        assert final.error == ""
        # The failure (with its traceback) is preserved in history.
        assert [s for s, _t in final.history].count("failed") == 1

    def test_backoff_delay_doubles_and_caps(self, tmp_path):
        service = RunService(str(tmp_path / "runs"), max_retries=10,
                             backoff_base=0.5, backoff_cap=3.0)
        journal = service.journal
        entry = journal.submit(FAST_SPEC)
        journal.transition(entry.entry_id, "validated")
        expected = [0.5, 1.0, 2.0, 3.0, 3.0]  # capped at backoff_cap
        for attempt, delay in enumerate(expected, start=1):
            journal.transition(entry.entry_id, "running")
            before = time.time()
            try:
                raise RuntimeError("synthetic failure")
            except RuntimeError:
                service._record_failure(journal.get(entry.entry_id))
            failed = journal.get(entry.entry_id)
            assert failed.state == "failed"
            assert failed.attempts == attempt
            assert failed.next_attempt_at == pytest.approx(
                before + delay, abs=0.25)
            assert "synthetic failure" in failed.error

    def test_cancelled_entry_never_executes(self, tmp_path):
        runs_dir = tmp_path / "runs"
        journal = Journal(str(runs_dir / QUEUE_DIRNAME))
        entry = journal.submit(FAST_SPEC)
        journal.cancel(entry.entry_id)

        counts = RunService(str(runs_dir), poll_interval=0.02).serve(
            drain=True, max_runtime=60.0)
        assert counts["cancelled"] == 1 and counts["published"] == 0
        run_id = default_run_id(parse_spec(FAST_SPEC))
        assert not os.path.exists(str(runs_dir / "default" / run_id))


class TestSharedTables:
    """Acceptance: one shared-memory DP table per key per *service*."""

    def test_concurrent_submissions_share_one_published_table(self,
                                                              tmp_path):
        runs_dir = tmp_path / "runs"
        journal = Journal(str(runs_dir / QUEUE_DIRNAME))
        # Same (lifespan, cost, interrupts) DP key, different tenants —
        # distinct run directories, concurrent workers.
        journal.submit(DP_SPEC, tenant="team-a")
        journal.submit(DP_SPEC, tenant="team-b")

        service = _drain(runs_dir, workers=2)
        assert service.journal.counts()["published"] == 2
        stats = service.publisher.stats
        # The 60k-lifespan table went into shared memory exactly once and
        # the second submission attached to it.
        assert stats.created == 1
        assert stats.reused >= 1
        assert len(set(stats.created_keys)) == 1
        # ... and it was *solved* exactly once, via the shared cache.
        assert service.table_cache.stats.misses == 1
        assert service.table_cache.stats.memory_hits >= 1

    def test_tenant_namespaces_isolate_runs(self, tmp_path):
        runs_dir = tmp_path / "runs"
        journal = Journal(str(runs_dir / QUEUE_DIRNAME))
        a = journal.submit(FAST_SPEC, tenant="team-a")
        b = journal.submit(FAST_SPEC, tenant="team-b")

        _drain(runs_dir, workers=2)
        run_id = default_run_id(parse_spec(FAST_SPEC))
        for entry in (a, b):
            assert journal.get(entry.entry_id).state == "published"
        report_a = render_run_report(Run(str(runs_dir / "team-a" / run_id)))
        report_b = render_run_report(Run(str(runs_dir / "team-b" / run_id)))
        assert report_a == report_b  # same spec, isolated stores

    def test_same_run_submissions_serialise_not_corrupt(self, tmp_path):
        # Two submissions of the *same* spec to the *same* tenant target
        # one run directory; the service must serialise them instead of
        # letting two workers race on it.
        runs_dir = tmp_path / "runs"
        journal = Journal(str(runs_dir / QUEUE_DIRNAME))
        first = journal.submit(FAST_SPEC)
        second = journal.submit(FAST_SPEC)

        _drain(runs_dir, workers=2)
        assert journal.get(first.entry_id).state == "published"
        assert journal.get(second.entry_id).state == "published"
        run_id = default_run_id(parse_spec(FAST_SPEC))
        run = Run(str(runs_dir / "default" / run_id))
        assert run.status == "complete"
        assert render_run_report(run) == render_run_report(run_spec(
            parse_spec(FAST_SPEC), runs_dir=tmp_path / "ref", run_id=run_id))


class TestHTTPStatus:
    def test_endpoints_while_service_runs(self, tmp_path):
        runs_dir = tmp_path / "runs"
        journal = Journal(str(runs_dir / QUEUE_DIRNAME))
        entry = journal.submit(FAST_SPEC)

        service = RunService(str(runs_dir), poll_interval=0.02, http_port=0)
        from repro.service.http import StatusHTTPServer

        service.http = StatusHTTPServer(service.journal, port=0,
                                        inflight=service.inflight_ids)
        service.http.start()
        base = f"http://127.0.0.1:{service.http.port}"
        try:
            with urllib.request.urlopen(f"{base}/healthz", timeout=10) as r:
                assert json.loads(r.read()) == {"ok": True}
            with urllib.request.urlopen(f"{base}/status", timeout=10) as r:
                snapshot = json.loads(r.read())
            assert snapshot["queue"]["submitted"] == 1
            url = f"{base}/status/{entry.entry_id}"
            with urllib.request.urlopen(url, timeout=10) as r:
                assert json.loads(r.read())["entry"] == entry.entry_id
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"{base}/status/nope", timeout=10)
            assert excinfo.value.code == 404
        finally:
            service.serve(drain=True, max_runtime=120.0)  # closes http too
        assert journal.get(entry.entry_id).state == "published"
        with pytest.raises(JournalError):
            journal.get("definitely-missing")
