"""Tests for the discrete-event NOW simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import InvalidParameterError, SimulationError
from repro.schedules import (
    EqualizingAdaptiveScheduler,
    FixedPeriodScheduler,
    SinglePeriodScheduler,
)
from repro.simulator import (
    BorrowedWorkstation,
    CycleStealingSimulation,
    Event,
    EventKind,
    EventQueue,
)
from repro.workloads import constant_tasks


class TestEventQueue:
    def test_ordering_by_time_then_sequence(self):
        q = EventQueue()
        q.push(5.0, EventKind.PERIOD_END, "a")
        q.push(1.0, EventKind.OWNER_INTERRUPT, "a")
        q.push(1.0, EventKind.LIFESPAN_END, "b")
        first = q.pop()
        second = q.pop()
        third = q.pop()
        assert first.kind is EventKind.OWNER_INTERRUPT
        assert second.kind is EventKind.LIFESPAN_END
        assert third.time == 5.0
        assert q.pop() is None

    def test_peek_and_len(self):
        q = EventQueue()
        assert not q and q.peek_time() is None
        q.push(2.0, EventKind.PERIOD_END, "a")
        assert len(q) == 1 and q.peek_time() == 2.0

    def test_event_is_ordered_dataclass(self):
        a = Event(time=1.0, sequence=0, kind=EventKind.PERIOD_END, workstation_id="x")
        b = Event(time=1.0, sequence=1, kind=EventKind.PERIOD_END, workstation_id="x")
        assert a < b


class TestBorrowedWorkstation:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            BorrowedWorkstation("w", lifespan=0.0, setup_cost=1.0, interrupt_budget=1)
        with pytest.raises(InvalidParameterError):
            BorrowedWorkstation("w", lifespan=10.0, setup_cost=-1.0, interrupt_budget=1)
        with pytest.raises(InvalidParameterError):
            BorrowedWorkstation("w", lifespan=10.0, setup_cost=1.0, interrupt_budget=-1)
        with pytest.raises(InvalidParameterError):
            BorrowedWorkstation("w", lifespan=10.0, setup_cost=1.0, interrupt_budget=1,
                                speed=0.0)
        with pytest.raises(InvalidParameterError):
            BorrowedWorkstation("w", lifespan=10.0, setup_cost=1.0, interrupt_budget=1,
                                owner_interrupts=[-2.0])

    def test_interrupts_sorted(self):
        ws = BorrowedWorkstation("w", lifespan=10.0, setup_cost=1.0, interrupt_budget=2,
                                 owner_interrupts=[5.0, 2.0])
        assert ws.owner_interrupts == (2.0, 5.0)


def _single(lifespan=100.0, c=1.0, budget=2, interrupts=(), speed=1.0):
    return BorrowedWorkstation("ws-0", lifespan=lifespan, setup_cost=c,
                               interrupt_budget=budget, owner_interrupts=interrupts,
                               speed=speed)


class TestSimulationBasics:
    def test_requires_workstations(self):
        with pytest.raises(SimulationError):
            CycleStealingSimulation([], SinglePeriodScheduler())

    def test_unique_ids_required(self):
        ws = _single()
        with pytest.raises(SimulationError):
            CycleStealingSimulation([ws, ws], SinglePeriodScheduler())

    def test_no_interrupts_single_period(self):
        report = CycleStealingSimulation([_single()], SinglePeriodScheduler()).run()
        m = report.per_workstation["ws-0"]
        assert m.completed_work == pytest.approx(99.0)
        assert m.completed_periods == 1
        assert m.owner_interrupts == 0
        m.check_conservation(100.0)

    def test_interrupt_kills_work_in_flight(self):
        ws = _single(interrupts=[50.0])
        report = CycleStealingSimulation([ws], SinglePeriodScheduler()).run()
        m = report.per_workstation["ws-0"]
        # The single long period is killed at t=50; the scheduler then gets
        # the residual 50 as one new period -> 49 units of work.
        assert m.completed_work == pytest.approx(49.0)
        assert m.wasted_time == pytest.approx(50.0)
        assert m.killed_periods == 1
        m.check_conservation(100.0)

    def test_fixed_periods_with_interrupt(self):
        ws = _single(interrupts=[25.0])
        report = CycleStealingSimulation([ws], FixedPeriodScheduler(10.0)).run()
        m = report.per_workstation["ws-0"]
        # Periods of 10: two complete (work 18), the third killed at t=25
        # (5 wasted), then a new episode of fixed periods covers [25, 100]
        # (six periods of 10 plus a final period of 15 absorbing the rest).
        assert m.killed_periods == 1
        assert m.wasted_time == pytest.approx(5.0)
        assert m.completed_work == pytest.approx(18.0 + 6 * 9.0 + 14.0)
        m.check_conservation(100.0)

    def test_speed_scales_work(self):
        ws = _single(speed=2.0)
        report = CycleStealingSimulation([ws], SinglePeriodScheduler()).run()
        assert report.per_workstation["ws-0"].completed_work == pytest.approx(198.0)

    def test_interrupts_beyond_budget_handled(self):
        ws = _single(budget=1, interrupts=[20.0, 40.0, 60.0])
        report = CycleStealingSimulation([ws], EqualizingAdaptiveScheduler()).run()
        m = report.per_workstation["ws-0"]
        assert m.owner_interrupts == 3
        m.check_conservation(100.0)
        assert m.completed_work > 0.0

    def test_scheduler_factory_per_workstation(self):
        machines = [_single(), BorrowedWorkstation("ws-1", lifespan=100.0, setup_cost=1.0,
                                                   interrupt_budget=0)]
        factory_calls = []

        def factory(ws):
            factory_calls.append(ws.workstation_id)
            return SinglePeriodScheduler()

        report = CycleStealingSimulation(machines, scheduler_factory=factory).run()
        assert sorted(factory_calls) == ["ws-0", "ws-1"]
        assert report.total_work == pytest.approx(198.0)

    def test_bare_callable_scheduler_is_deprecated(self):
        with pytest.warns(DeprecationWarning):
            sim = CycleStealingSimulation([_single()],
                                          lambda ws: SinglePeriodScheduler())
        assert sim.run().total_work == pytest.approx(99.0)

    def test_callable_scheduler_object_is_not_misclassified(self):
        # A scheduler that is *also* callable used to be ambiguous under the
        # old duck-typing heuristic; it must be treated as a scheduler.
        class CallableScheduler(SinglePeriodScheduler):
            def __call__(self, ws):  # pragma: no cover - must never run
                raise AssertionError("treated as a factory")

        report = CycleStealingSimulation([_single()], CallableScheduler()).run()
        assert report.per_workstation["ws-0"].completed_work == pytest.approx(99.0)

    def test_scheduler_and_factory_are_mutually_exclusive(self):
        with pytest.raises(SimulationError):
            CycleStealingSimulation([_single()], SinglePeriodScheduler(),
                                    scheduler_factory=lambda ws: SinglePeriodScheduler())

    def test_scheduler_required(self):
        with pytest.raises(SimulationError):
            CycleStealingSimulation([_single()])
        with pytest.raises(SimulationError):
            CycleStealingSimulation([_single()], scheduler=object())

    def test_non_callable_factory_rejected(self):
        with pytest.raises(SimulationError):
            CycleStealingSimulation([_single()], scheduler_factory=42)

    def test_deprecated_callable_names_the_replacement(self):
        with pytest.warns(DeprecationWarning, match="scheduler_factory"):
            CycleStealingSimulation([_single()],
                                    lambda ws: SinglePeriodScheduler())

    def test_deprecated_callable_still_routes_per_workstation(self):
        # The legacy bare-callable form keeps factory behaviour until it is
        # removed: it must be invoked with each workstation.
        machines = [_single(),
                    BorrowedWorkstation("ws-1", lifespan=100.0, setup_cost=1.0,
                                        interrupt_budget=0)]
        seen = []

        def legacy(ws):
            seen.append(ws.workstation_id)
            return SinglePeriodScheduler()

        with pytest.warns(DeprecationWarning):
            report = CycleStealingSimulation(machines, legacy).run()
        assert sorted(set(seen)) == ["ws-0", "ws-1"]
        assert report.total_work == pytest.approx(198.0)

    def test_report_rows(self):
        report = CycleStealingSimulation([_single()], SinglePeriodScheduler()).run()
        rows = report.rows()
        assert len(rows) == 1 and rows[0]["workstation"] == "ws-0"


class _ShortEpisodeScheduler:
    """Under-commits: one 10-unit period per episode, idling the rest."""

    name = "short-episode"

    def episode_schedule(self, residual, interrupts_remaining, setup_cost):
        from repro import EpisodeSchedule
        return EpisodeSchedule.single_period(min(10.0, residual))


class TestEdgeAccounting:
    """Interrupt-while-idle and exact-boundary paths of the event handlers."""

    def test_interrupt_while_idle_closes_the_gap(self):
        # Episode [0, 10] completes, machine idles until the owner reclaims
        # at t = 50 with nothing in flight: no kill, but the idle gap must
        # be accounted for exactly and a new episode must start.
        ws = _single(interrupts=[50.0])
        report = CycleStealingSimulation([ws], _ShortEpisodeScheduler()).run()
        m = report.per_workstation["ws-0"]
        assert m.killed_periods == 0
        assert m.wasted_time == pytest.approx(0.0)
        assert m.owner_interrupts == 1
        assert m.completed_periods == 2       # [0,10] and [50,60]
        assert m.completed_work == pytest.approx(18.0)
        assert m.idle_time == pytest.approx(80.0)
        m.check_conservation(100.0)

    def test_period_ending_exactly_at_lifespan_counts(self):
        # Four periods of 25 tile the lifespan exactly; the last one ends at
        # the contract boundary and its results make it back in time.
        ws = _single(budget=0)
        report = CycleStealingSimulation([ws], FixedPeriodScheduler(25.0)).run()
        m = report.per_workstation["ws-0"]
        assert m.completed_periods == 4
        assert m.killed_periods == 0
        assert m.completed_work == pytest.approx(4 * 24.0)
        assert m.idle_time == pytest.approx(0.0)
        m.check_conservation(100.0)

    def test_period_overshooting_lifespan_is_wasted(self):
        # A scheduler that always commits a 30-unit period: the episode
        # started by the t = 85 interrupt is still in flight at the
        # contract boundary, so its 15 elapsed units never make it back.
        class Overcommit:
            name = "overcommit"

            def episode_schedule(self, residual, interrupts_remaining, setup_cost):
                from repro import EpisodeSchedule
                return EpisodeSchedule.single_period(30.0)

        ws = _single(interrupts=[85.0])
        report = CycleStealingSimulation([ws], Overcommit()).run()
        m = report.per_workstation["ws-0"]
        assert m.completed_periods == 1        # [0, 30]
        assert m.killed_periods == 1           # in flight at lifespan end
        assert m.wasted_time == pytest.approx(15.0)
        assert m.idle_time == pytest.approx(55.0)
        assert m.completed_work == pytest.approx(29.0)
        m.check_conservation(100.0)

    def test_interrupt_at_idle_tail_then_quiet_until_lifespan(self):
        # Interrupt at t = 95 during idle leaves only 5 units; the fresh
        # episode [95, 100] ends exactly at the lifespan boundary.
        ws = _single(interrupts=[95.0])
        report = CycleStealingSimulation([ws], _ShortEpisodeScheduler()).run()
        m = report.per_workstation["ws-0"]
        assert m.completed_periods == 2       # [0,10] and [95,100]
        assert m.completed_work == pytest.approx(9.0 + 4.0)
        assert m.owner_interrupts == 1
        assert m.killed_periods == 0
        m.check_conservation(100.0)


class TestTasksIntegration:
    def test_tasks_completed_counted(self):
        bag = constant_tasks(500, size=1.0)
        report = CycleStealingSimulation([_single()], SinglePeriodScheduler(),
                                         task_bag=bag).run()
        assert report.total_tasks_completed == 99
        assert bag.completed_tasks == 99

    def test_tasks_shared_across_workstations(self):
        bag = constant_tasks(50, size=1.0)
        machines = [_single(), BorrowedWorkstation("ws-1", lifespan=100.0, setup_cost=1.0,
                                                   interrupt_budget=0)]
        report = CycleStealingSimulation(machines, SinglePeriodScheduler(),
                                         task_bag=bag).run()
        assert report.total_tasks_completed == 50
        assert bag.is_empty


class TestSimulationMatchesAnalyticModel:
    def test_worst_case_trace_matches_guaranteed_work(self):
        """Replaying the analytic worst case through the simulator agrees
        with the game-theoretic guaranteed work (up to scheduling grain)."""
        from repro import CycleStealingParams
        from repro.schedules import RosenbergNonAdaptiveScheduler
        from repro.workloads import worst_case_interrupts_for_schedule

        params = CycleStealingParams(lifespan=400.0, setup_cost=1.0, max_interrupts=2)
        scheduler = RosenbergNonAdaptiveScheduler()
        schedule = scheduler.opportunity_schedule(params)
        trace = worst_case_interrupts_for_schedule(schedule, params)
        ws = BorrowedWorkstation("ws-0", lifespan=400.0, setup_cost=1.0,
                                 interrupt_budget=2, owner_interrupts=trace)

        # Drive the simulator with a scheduler that replays the same fixed
        # schedule (tail after interrupts), i.e. the non-adaptive discipline.
        class TailScheduler:
            name = "tail"

            def episode_schedule(self, residual, p, c):
                clipped = schedule.truncated_to(residual)
                from repro import EpisodeSchedule
                if clipped is None:
                    return EpisodeSchedule.single_period(residual)
                # Keep only the suffix that fits the residual lifespan.
                skip = schedule.num_periods - clipped.num_periods
                tail = schedule.tail_from(skip + 1)
                tail = tail.truncated_to(residual) if tail else None
                if tail is None:
                    return EpisodeSchedule.single_period(residual)
                if tail.total_length < residual:
                    tail = tail.with_appended(residual - tail.total_length)
                return tail

        report = CycleStealingSimulation([ws], TailScheduler()).run()
        simulated = report.per_workstation["ws-0"].completed_work
        analytic = scheduler.guaranteed_work(params)
        # The simulator's oblivious tail differs from the paper's "one long
        # final period" exception, so allow a modest slack.
        assert simulated >= analytic - 2 * params.setup_cost - 2.0
        assert simulated <= params.lifespan

    @settings(deadline=None, max_examples=20)
    @given(st.lists(st.floats(min_value=1.0, max_value=99.0), min_size=0, max_size=5),
           st.integers(min_value=0, max_value=3))
    def test_conservation_property(self, interrupts, budget):
        ws = BorrowedWorkstation("ws-0", lifespan=100.0, setup_cost=1.0,
                                 interrupt_budget=budget,
                                 owner_interrupts=sorted(interrupts))
        report = CycleStealingSimulation([ws], EqualizingAdaptiveScheduler()).run()
        report.per_workstation["ws-0"].check_conservation(100.0)
