"""Shared-memory DP tables and the --profile stage breakdown."""

import numpy as np
import pytest

from repro.dp import solve
from repro.experiments import DPTableCache, SweepGrid, run_sweep
from repro.experiments.cache import (
    SharedTablePublisher,
    attach_shared_table,
)
from repro.experiments.orchestrator import (
    ExperimentConfig,
    publish_shared_tables,
)
from repro.experiments.profiling import (
    PROFILE_PREFIX,
    aggregate_profiles,
    pop_profile,
    render_profile,
    stage_column,
)


class TestSharedTableRoundTrip:
    def test_publish_attach_is_zero_copy_identical(self):
        table = solve(400, 1, 2)
        with SharedTablePublisher() as publisher:
            handle = publisher.publish(table)
            attached = attach_shared_table(handle)
            assert attached.setup_cost == table.setup_cost
            np.testing.assert_array_equal(attached.values, table.values)
            np.testing.assert_array_equal(attached.first_periods,
                                          table.first_periods)
            # Zero-copy: the attached arrays view the shared block, and the
            # views are read-only so no worker can corrupt the machine-wide
            # copy.
            assert not attached.values.flags.writeable
            assert not attached.first_periods.flags.writeable
            assert attached.values.base is not None
            # The full ValueTable API works on the attached view.
            assert attached.value(2, 400) == table.value(2, 400)
            assert attached.optimal_first_period(1, 100) == \
                table.optimal_first_period(1, 100)

    def test_publish_is_idempotent_per_key(self):
        table = solve(100, 1, 1)
        with SharedTablePublisher() as publisher:
            first = publisher.publish(table)
            second = publisher.publish(table)
            assert first is second
            assert len(publisher.handles) == 1

    def test_handle_reports_geometry(self):
        table = solve(250, 2, 3)
        with SharedTablePublisher() as publisher:
            handle = publisher.publish(table)
            assert handle.shape == (4, 251)
            assert handle.num_bytes == 2 * 4 * 251 * 8

    def test_attach_memoised_per_block(self):
        table = solve(120, 1, 1)
        with SharedTablePublisher() as publisher:
            handle = publisher.publish(table)
            assert attach_shared_table(handle) is attach_shared_table(handle)

    def test_preload_serves_solve_and_covering_lookups(self):
        table = solve(300, 1, 2)
        cache = DPTableCache()
        cache.preload(table)
        assert cache.solve(300, 1, 2) is table
        assert cache.stats.memory_hits == 1
        assert cache.stats.misses == 0
        # Covering lookup: a smaller range is served by the same table.
        assert cache.solve(200, 1, 1) is table
        assert cache.stats.misses == 0


class TestPublishForSweep:
    def test_publishes_only_needed_integer_keys(self):
        grid = SweepGrid(lifespans=(100.0, 200.0, 150.5),
                         setup_costs=(1.0,), interrupt_budgets=(1,),
                         schedulers=("equalizing-adaptive",))
        config = ExperimentConfig(include_optimal=True)
        publisher, shared = publish_shared_tables(grid.points(), config)
        try:
            assert publisher is not None
            # The non-integer lifespan point gets no table.
            assert {h.key[0] for h in shared.shared_tables} == {100, 200}
        finally:
            publisher.close()

    def test_no_publication_without_dp_consumers(self):
        grid = SweepGrid(lifespans=(100.0,), setup_costs=(1.0,),
                         interrupt_budgets=(1,),
                         schedulers=("equalizing-adaptive",))
        publisher, config = publish_shared_tables(grid.points(),
                                                  ExperimentConfig())
        assert publisher is None
        assert config.shared_tables == ()

    def test_dp_optimal_scheduler_forces_publication(self):
        grid = SweepGrid(lifespans=(100.0,), setup_costs=(1.0,),
                         interrupt_budgets=(2,), schedulers=("dp-optimal",))
        publisher, config = publish_shared_tables(grid.points(),
                                                  ExperimentConfig())
        try:
            assert publisher is not None
            assert [h.key[:3] for h in config.shared_tables] == [(100, 1, 2)]
        finally:
            publisher.close()

    def test_parallel_sweep_rows_identical_with_shared_tables(self):
        grid = SweepGrid(lifespans=(150.0, 300.0), setup_costs=(1.0,),
                         interrupt_budgets=(1, 2),
                         schedulers=("equalizing-adaptive", "dp-optimal"))
        serial = run_sweep(grid, jobs=1, include_optimal=True)
        parallel = run_sweep(grid, jobs=2, include_optimal=True)
        assert serial == parallel


class TestProfiling:
    def test_pop_profile_strips_reserved_columns(self):
        row = {"a": 1.0, stage_column("referee"): 0.25,
               stage_column("monte_carlo"): 0.5}
        timings = pop_profile(row)
        assert timings == {"referee": 0.25, "monte_carlo": 0.5}
        assert row == {"a": 1.0}
        assert not any(k.startswith(PROFILE_PREFIX) for k in row)

    def test_aggregate_and_render(self):
        totals = aggregate_profiles([{"referee": 0.5}, {"referee": 0.25,
                                                        "dp_solve": 1.0}])
        assert totals == {"referee": 0.75, "dp_solve": 1.0}
        text = render_profile(totals, wall_seconds=2.0, points=3, jobs=1)
        assert "referee" in text and "dp_solve" in text
        assert "3 point(s)" in text
        parallel = render_profile(totals, wall_seconds=2.0, points=3, jobs=4)
        assert "summed across workers" in parallel

    def test_sweep_profile_prints_and_strips(self, capsys):
        grid = SweepGrid(lifespans=(100.0,), setup_costs=(1.0,),
                         interrupt_budgets=(1,),
                         schedulers=("equalizing-adaptive",))
        rows = run_sweep(grid, jobs=1, include_optimal=True, profile=True)
        err = capsys.readouterr().err
        assert "profile:" in err and "referee" in err
        assert not any(k.startswith(PROFILE_PREFIX) for row in rows
                       for k in row)

    def test_profiled_run_store_shards_stay_clean(self, tmp_path, capsys):
        from repro.runstore import run_spec
        from repro.specs import parse_spec

        spec = parse_spec({
            "experiment": {"name": "profiled", "kind": "sweep",
                           "replications": 0},
            "sweep": {"lifespans": [100.0], "setup_costs": [1.0],
                      "interrupts": [1],
                      "schedulers": ["equalizing-adaptive"],
                      "optimal": True},
        }, source="inline")
        run = run_spec(spec, runs_dir=tmp_path, run_id="profiled",
                       profile=True)
        err = capsys.readouterr().err
        assert "profile:" in err and "shard_io" in err
        for row in run.rows():
            assert not any(k.startswith(PROFILE_PREFIX) for k in row)

    def test_cli_sweep_profile_flag(self, capsys):
        from repro.cli import main

        assert main(["sweep", "--lifespans", "100", "--interrupts", "1",
                     "--schedulers", "equalizing-adaptive",
                     "--profile"]) == 0
        captured = capsys.readouterr()
        assert "profile:" in captured.err
        assert "referee" in captured.err


class TestProfiledRowsUnchanged:
    def test_profile_never_changes_results(self):
        grid = SweepGrid(lifespans=(200.0,), setup_costs=(1.0,),
                         interrupt_budgets=(1, 2),
                         schedulers=("equalizing-adaptive",),
                         adversaries=("poisson-owner",))
        plain = run_sweep(grid, jobs=1, replications=20, backend="batch")
        profiled = run_sweep(grid, jobs=1, replications=20, backend="batch",
                             profile=True)
        assert plain == profiled
