"""Unit and property tests for EpisodeSchedule and OpportunitySchedule."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import EpisodeSchedule, InvalidScheduleError
from repro.core.schedule import EpisodeRecord, OpportunitySchedule

period_lists = st.lists(
    st.floats(min_value=0.01, max_value=1e4, allow_nan=False, allow_infinity=False),
    min_size=1, max_size=40)


class TestConstruction:
    def test_basic(self):
        s = EpisodeSchedule([3.0, 2.0, 1.0])
        assert s.num_periods == 3
        assert s.total_length == 6.0

    def test_rejects_empty(self):
        with pytest.raises(InvalidScheduleError):
            EpisodeSchedule([])

    @pytest.mark.parametrize("bad", [[0.0], [-1.0, 2.0], [float("nan")], [float("inf")]])
    def test_rejects_bad_lengths(self, bad):
        with pytest.raises(InvalidScheduleError):
            EpisodeSchedule(bad)

    def test_rejects_2d(self):
        with pytest.raises(InvalidScheduleError):
            EpisodeSchedule(np.ones((2, 2)))

    def test_periods_are_read_only(self):
        s = EpisodeSchedule([1.0, 2.0])
        with pytest.raises(ValueError):
            s.periods[0] = 5.0

    def test_equality_and_hash(self):
        a = EpisodeSchedule([1.0, 2.0])
        b = EpisodeSchedule([1.0, 2.0])
        c = EpisodeSchedule([2.0, 1.0])
        assert a == b and hash(a) == hash(b)
        assert a != c
        assert a != "not a schedule"

    def test_iteration_and_indexing(self):
        s = EpisodeSchedule([1.0, 2.0, 3.0])
        assert list(s) == [1.0, 2.0, 3.0]
        assert s[1] == 2.0
        assert len(s) == 3


class TestTiming:
    def test_finish_and_start_times(self):
        s = EpisodeSchedule([2.0, 3.0, 5.0])
        assert np.allclose(s.finish_times, [2.0, 5.0, 10.0])
        assert np.allclose(s.start_times, [0.0, 2.0, 5.0])

    def test_finish_time_indexing(self):
        s = EpisodeSchedule([2.0, 3.0])
        assert s.finish_time(0) == 0.0
        assert s.finish_time(1) == 2.0
        assert s.finish_time(2) == 5.0
        with pytest.raises(IndexError):
            s.finish_time(3)

    def test_period_containing(self):
        s = EpisodeSchedule([2.0, 3.0, 5.0])
        assert s.period_containing(0.0) == 1
        assert s.period_containing(1.999) == 1
        assert s.period_containing(2.0) == 2
        assert s.period_containing(9.999) == 3

    def test_period_containing_out_of_range(self):
        s = EpisodeSchedule([2.0])
        with pytest.raises(InvalidScheduleError):
            s.period_containing(2.0)
        with pytest.raises(InvalidScheduleError):
            s.period_containing(-0.1)

    @given(period_lists)
    def test_prefix_sums_consistent(self, lengths):
        s = EpisodeSchedule(lengths)
        finishes = s.finish_times
        assert finishes[-1] == pytest.approx(s.total_length)
        assert np.all(np.diff(finishes) > 0.0)
        for k in range(1, s.num_periods + 1):
            assert s.finish_time(k) == pytest.approx(float(finishes[k - 1]))


class TestProductivity:
    def test_fully_productive(self):
        s = EpisodeSchedule([3.0, 2.5, 1.1])
        assert s.is_fully_productive(1.0)
        assert s.is_productive(1.0)

    def test_short_last_period_is_productive_but_not_fully(self):
        s = EpisodeSchedule([3.0, 0.5])
        assert s.is_productive(1.0)
        assert not s.is_fully_productive(1.0)

    def test_short_middle_period_not_productive(self):
        s = EpisodeSchedule([3.0, 0.5, 3.0])
        assert not s.is_productive(1.0)

    def test_single_period_always_productive(self):
        assert EpisodeSchedule([0.5]).is_productive(1.0)

    def test_productive_mask(self):
        s = EpisodeSchedule([3.0, 0.5, 1.5])
        assert list(s.productive_mask(1.0)) == [True, False, True]


class TestWorkHelpers:
    def test_work_if_uninterrupted(self):
        s = EpisodeSchedule([3.0, 0.5, 2.0])
        assert s.work_if_uninterrupted(1.0) == pytest.approx(2.0 + 0.0 + 1.0)

    def test_work_of_prefix(self):
        s = EpisodeSchedule([3.0, 2.0, 4.0])
        assert s.work_of_prefix(0, 1.0) == 0.0
        assert s.work_of_prefix(2, 1.0) == pytest.approx(3.0)
        with pytest.raises(IndexError):
            s.work_of_prefix(4, 1.0)

    def test_overhead_if_uninterrupted(self):
        s = EpisodeSchedule([3.0, 0.5, 2.0])
        assert s.overhead_if_uninterrupted(1.0) == pytest.approx(1.0 + 0.5 + 1.0)

    @given(period_lists, st.floats(min_value=0.0, max_value=100.0))
    def test_work_plus_overhead_equals_length(self, lengths, c):
        s = EpisodeSchedule(lengths)
        total = s.work_if_uninterrupted(c) + s.overhead_if_uninterrupted(c)
        assert total == pytest.approx(s.total_length, rel=1e-9)


class TestDerivedSchedules:
    def test_tail_from(self):
        s = EpisodeSchedule([1.0, 2.0, 3.0])
        tail = s.tail_from(2)
        assert list(tail) == [2.0, 3.0]
        assert s.tail_from(4) is None
        with pytest.raises(IndexError):
            s.tail_from(0)

    def test_truncated_to(self):
        s = EpisodeSchedule([2.0, 2.0, 2.0])
        t = s.truncated_to(3.0)
        assert list(t) == [2.0, 1.0]
        assert s.truncated_to(10.0) is s
        assert s.truncated_to(0.0) is None

    def test_with_appended(self):
        s = EpisodeSchedule([1.0]).with_appended(2.0)
        assert list(s) == [1.0, 2.0]

    def test_single_period_and_equal_periods(self):
        assert list(EpisodeSchedule.single_period(5.0)) == [5.0]
        eq = EpisodeSchedule.equal_periods(6.0, 3)
        assert list(eq) == [2.0, 2.0, 2.0]
        with pytest.raises(InvalidScheduleError):
            EpisodeSchedule.equal_periods(6.0, 0)

    def test_from_period_lengths_absorbs_remainder(self):
        s = EpisodeSchedule.from_period_lengths([2.0, 2.0], 7.0)
        assert s.total_length == pytest.approx(7.0)
        assert s.num_periods == 2
        assert s[1] == pytest.approx(5.0)

    def test_from_period_lengths_clips_overrun(self):
        s = EpisodeSchedule.from_period_lengths([4.0, 4.0, 4.0], 6.0)
        assert s.total_length == pytest.approx(6.0)
        assert list(s) == [4.0, 2.0]

    def test_from_period_lengths_empty_input(self):
        s = EpisodeSchedule.from_period_lengths([], 5.0)
        assert list(s) == [5.0]

    def test_from_period_lengths_rejects_nonpositive_lifespan(self):
        with pytest.raises(InvalidScheduleError):
            EpisodeSchedule.from_period_lengths([1.0], 0.0)

    @given(period_lists, st.floats(min_value=0.5, max_value=1e4))
    def test_from_period_lengths_always_covers_lifespan(self, lengths, lifespan):
        s = EpisodeSchedule.from_period_lengths(lengths, lifespan)
        assert s.total_length == pytest.approx(lifespan, rel=1e-9, abs=1e-9)


class TestValidation:
    def test_exact_cover_required_by_default(self):
        s = EpisodeSchedule([2.0, 2.0])
        s.validate_for_lifespan(4.0)
        with pytest.raises(InvalidScheduleError):
            s.validate_for_lifespan(5.0)

    def test_overrun_always_rejected(self):
        s = EpisodeSchedule([2.0, 2.0])
        with pytest.raises(InvalidScheduleError):
            s.validate_for_lifespan(3.0, require_exact=False)

    def test_undershoot_allowed_when_not_exact(self):
        EpisodeSchedule([2.0]).validate_for_lifespan(5.0, require_exact=False)


class TestOpportunitySchedule:
    def _record(self, periods, interrupt, c=1.0):
        sched = EpisodeSchedule(periods)
        from repro.core.work import episode_elapsed, episode_work
        return EpisodeRecord(
            schedule=sched, residual_lifespan=sched.total_length,
            interrupts_remaining=1, interrupt_time=interrupt,
            work=episode_work(sched, c, interrupt),
            elapsed=episode_elapsed(sched, interrupt))

    def test_aggregation(self):
        opp = OpportunitySchedule()
        opp.append(self._record([5.0, 5.0], None))
        opp.append(self._record([4.0], 3.0))
        assert opp.num_episodes == 2
        assert opp.num_interrupts == 1
        assert opp.total_work == pytest.approx(8.0)
        assert opp.total_elapsed == pytest.approx(13.0)
        assert opp.interrupt_times() == (3.0,)

    def test_work_lost_to_interrupts(self):
        opp = OpportunitySchedule()
        opp.append(self._record([4.0], 3.0))  # 3 units elapsed, 2 productive lost
        assert opp.work_lost_to_interrupts(1.0) == pytest.approx(2.0)

    def test_was_interrupted_flag(self):
        rec = self._record([4.0], None)
        assert not rec.was_interrupted
        rec2 = self._record([4.0], 2.0)
        assert rec2.was_interrupted
