"""Unit and property tests for CycleStealingParams."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import CycleStealingParams, InvalidParameterError

lifespans = st.floats(min_value=1e-3, max_value=1e9, allow_nan=False, allow_infinity=False)
costs = st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False)
budgets = st.integers(min_value=0, max_value=50)


class TestValidation:
    def test_valid_construction(self):
        p = CycleStealingParams(lifespan=100.0, setup_cost=1.0, max_interrupts=3)
        assert p.lifespan == 100.0
        assert p.setup_cost == 1.0
        assert p.max_interrupts == 3

    @pytest.mark.parametrize("lifespan", [0.0, -1.0, float("nan"), float("inf")])
    def test_bad_lifespan_rejected(self, lifespan):
        with pytest.raises(InvalidParameterError):
            CycleStealingParams(lifespan=lifespan, setup_cost=1.0, max_interrupts=1)

    @pytest.mark.parametrize("cost", [-0.1, float("nan"), float("inf")])
    def test_bad_setup_cost_rejected(self, cost):
        with pytest.raises(InvalidParameterError):
            CycleStealingParams(lifespan=10.0, setup_cost=cost, max_interrupts=1)

    @pytest.mark.parametrize("p", [-1, 1.5, "two", True])
    def test_bad_interrupts_rejected(self, p):
        with pytest.raises(InvalidParameterError):
            CycleStealingParams(lifespan=10.0, setup_cost=1.0, max_interrupts=p)

    def test_integer_inputs_coerced_to_float(self):
        p = CycleStealingParams(lifespan=10, setup_cost=1, max_interrupts=0)
        assert isinstance(p.lifespan, float)
        assert isinstance(p.setup_cost, float)


class TestDerivedQuantities:
    def test_normalized_lifespan(self):
        p = CycleStealingParams(lifespan=100.0, setup_cost=4.0, max_interrupts=1)
        assert p.normalized_lifespan == 25.0

    def test_normalized_lifespan_free_communication(self):
        p = CycleStealingParams(lifespan=100.0, setup_cost=0.0, max_interrupts=1)
        assert math.isinf(p.normalized_lifespan)

    def test_zero_work_threshold_matches_prop41c(self):
        p = CycleStealingParams(lifespan=100.0, setup_cost=2.0, max_interrupts=3)
        assert p.zero_work_threshold == 8.0

    def test_can_guarantee_work(self):
        assert CycleStealingParams(10.0, 2.0, 3).can_guarantee_work
        assert not CycleStealingParams(8.0, 2.0, 3).can_guarantee_work

    def test_single_period_work(self):
        assert CycleStealingParams(10.0, 2.0, 0).single_period_work == 8.0
        assert CycleStealingParams(1.0, 2.0, 0).single_period_work == 0.0

    @given(lifespans, costs, budgets)
    def test_threshold_formula(self, U, c, p):
        params = CycleStealingParams(lifespan=U, setup_cost=c, max_interrupts=p)
        assert params.zero_work_threshold == pytest.approx((p + 1) * c)


class TestTransformers:
    def test_with_lifespan(self):
        p = CycleStealingParams(100.0, 1.0, 2).with_lifespan(50.0)
        assert p.lifespan == 50.0 and p.max_interrupts == 2

    def test_with_interrupts(self):
        p = CycleStealingParams(100.0, 1.0, 2).with_interrupts(5)
        assert p.max_interrupts == 5

    def test_with_setup_cost(self):
        p = CycleStealingParams(100.0, 1.0, 2).with_setup_cost(3.0)
        assert p.setup_cost == 3.0

    def test_after_interrupt(self):
        p = CycleStealingParams(100.0, 1.0, 2).after_interrupt(30.0)
        assert p.lifespan == 70.0
        assert p.max_interrupts == 1

    def test_after_interrupt_requires_budget(self):
        with pytest.raises(InvalidParameterError):
            CycleStealingParams(100.0, 1.0, 0).after_interrupt(10.0)

    def test_after_interrupt_requires_positive_residual(self):
        with pytest.raises(InvalidParameterError):
            CycleStealingParams(100.0, 1.0, 1).after_interrupt(100.0)

    def test_after_interrupt_rejects_negative_elapsed(self):
        with pytest.raises(InvalidParameterError):
            CycleStealingParams(100.0, 1.0, 1).after_interrupt(-1.0)

    def test_normalized_constructor(self):
        p = CycleStealingParams.normalized(500.0, 2)
        assert p.setup_cost == 1.0 and p.lifespan == 500.0 and p.max_interrupts == 2

    def test_sweep_interrupts(self):
        base = CycleStealingParams(100.0, 1.0, 0)
        ps = list(base.sweep_interrupts(3))
        assert [x.max_interrupts for x in ps] == [0, 1, 2, 3]
        assert all(x.lifespan == 100.0 for x in ps)

    def test_frozen(self):
        p = CycleStealingParams(100.0, 1.0, 2)
        with pytest.raises(Exception):
            p.lifespan = 5.0

    @given(lifespans, costs, budgets.filter(lambda p: p >= 1))
    def test_after_interrupt_conserves_budget_and_time(self, U, c, p):
        params = CycleStealingParams(lifespan=U, setup_cost=c, max_interrupts=p)
        elapsed = U / 3.0
        nxt = params.after_interrupt(elapsed)
        assert nxt.max_interrupts == p - 1
        assert nxt.lifespan == pytest.approx(U - elapsed)
        assert nxt.setup_cost == c
