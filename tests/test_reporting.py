"""Tests for the reporting layer (tables, CSV, series summaries)."""

import numpy as np
import pytest

from repro.reporting import (
    crossover_point,
    format_value,
    pivot_series,
    ratio_summary,
    render_table,
    rows_to_csv,
    write_csv,
)


ROWS = [
    {"scheduler": "adaptive", "lifespan": 100.0, "work": 85.857},
    {"scheduler": "adaptive", "lifespan": 1000.0, "work": 955.3},
    {"scheduler": "nonadaptive", "lifespan": 100.0, "work": 81.0},
    {"scheduler": "nonadaptive", "lifespan": 1000.0, "work": 937.7},
]


class TestFormatting:
    def test_format_value_variants(self):
        assert format_value(None) == "-"
        assert format_value(True) == "yes"
        assert format_value(False) == "no"
        assert format_value(3.14159) == "3.142"
        assert format_value("abc") == "abc"
        assert format_value((1.0, 2.0)) == "(1, 2)"

    def test_render_table_alignment(self):
        text = render_table(ROWS, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "scheduler" in lines[1]
        assert len(lines) == 3 + len(ROWS)
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows padded to the same width

    def test_render_table_empty(self):
        assert "(no rows)" in render_table([], title="empty")

    def test_render_table_column_selection(self):
        text = render_table(ROWS, columns=["work"])
        assert "scheduler" not in text

    def test_rows_to_csv(self):
        csv_text = rows_to_csv(ROWS)
        lines = csv_text.strip().splitlines()
        assert lines[0] == "scheduler,lifespan,work"
        assert len(lines) == 5

    def test_write_csv(self, tmp_path):
        path = tmp_path / "out.csv"
        write_csv(path, ROWS)
        assert path.read_text().startswith("scheduler,")

    def test_missing_keys_render_as_dash(self):
        rows = [{"a": 1}, {"b": 2}]
        text = render_table(rows)
        assert "-" in text


class TestSeries:
    def test_pivot(self):
        series = pivot_series(ROWS, x="lifespan", y="work", series_key="scheduler")
        assert set(series) == {"adaptive", "nonadaptive"}
        xs, ys = series["adaptive"]
        assert list(xs) == [100.0, 1000.0]
        assert ys[0] == pytest.approx(85.857)

    def test_pivot_skips_incomplete_rows(self):
        rows = ROWS + [{"scheduler": "adaptive", "lifespan": None, "work": 1.0},
                       {"scheduler": "adaptive"}]
        series = pivot_series(rows, x="lifespan", y="work", series_key="scheduler")
        assert len(series["adaptive"][0]) == 2

    def test_ratio_summary(self):
        series = pivot_series(ROWS, x="lifespan", y="work", series_key="scheduler")
        summary = ratio_summary(series, "adaptive", "nonadaptive")
        assert summary["min"] >= 1.0
        assert summary["min"] <= summary["median"] <= summary["max"]

    def test_ratio_summary_missing_series(self):
        series = pivot_series(ROWS, x="lifespan", y="work", series_key="scheduler")
        with pytest.raises(KeyError):
            ratio_summary(series, "adaptive", "bogus")

    def test_ratio_summary_disjoint_grids(self):
        series = {"a": (np.array([1.0]), np.array([1.0])),
                  "b": (np.array([2.0]), np.array([1.0]))}
        with pytest.raises(ValueError):
            ratio_summary(series, "a", "b")

    def test_crossover_point(self):
        series = {
            "a": (np.array([1.0, 2.0, 3.0]), np.array([0.0, 5.0, 9.0])),
            "b": (np.array([1.0, 2.0, 3.0]), np.array([4.0, 4.0, 4.0])),
        }
        assert crossover_point(series, "a", "b") == 2.0
        assert crossover_point(series, "b", "a") == 1.0

    def test_crossover_none(self):
        series = {
            "a": (np.array([1.0, 2.0]), np.array([0.0, 1.0])),
            "b": (np.array([1.0, 2.0]), np.array([5.0, 5.0])),
        }
        assert crossover_point(series, "a", "b") is None
        with pytest.raises(KeyError):
            crossover_point(series, "a", "zzz")


class TestColumnarRendering:
    def test_renderers_accept_a_columnar_view(self):
        from repro.runstore import RunColumns

        columns = RunColumns(
            point_index=np.arange(2),
            data={"scheduler": np.asarray(["a", "b"]),
                  "work": np.asarray([1.5, 2.5])})
        as_rows = [{"scheduler": "a", "work": 1.5},
                   {"scheduler": "b", "work": 2.5}]
        assert render_table(columns) == render_table(as_rows)
        assert rows_to_csv(columns) == rows_to_csv(as_rows)
        from repro.reporting import render_markdown_table
        assert render_markdown_table(columns) == render_markdown_table(as_rows)


class TestReportDigestCache:
    SPEC = {
        "experiment": {"name": "cache-spec", "kind": "scenario", "seed": 0,
                       "replications": 2, "backend": "batch"},
        "scenario": {"family": "laptop",
                     "schedulers": ["equalizing-adaptive"]},
    }

    def _run(self, tmp_path):
        from repro.runstore import run_spec
        from repro.specs import parse_spec

        return run_spec(parse_spec(self.SPEC), runs_dir=tmp_path)

    def test_second_render_is_a_pure_cache_hit(self, tmp_path, monkeypatch):
        import repro.reporting.report as report_module
        from repro.reporting import refresh_run_report

        run = self._run(tmp_path)
        path, hit = refresh_run_report(run)
        assert not hit

        def boom(run):  # pragma: no cover - failure path
            raise AssertionError("cache hit must not re-render")

        monkeypatch.setattr(report_module, "render_run_report", boom)
        path2, hit2 = refresh_run_report(run)
        assert hit2 and path2 == path

    def test_force_rerenders_identical_bytes(self, tmp_path):
        from repro.reporting import refresh_run_report

        run = self._run(tmp_path)
        path, _hit = refresh_run_report(run)
        cached = open(path).read()
        _path, hit = refresh_run_report(run, force=True)
        assert not hit
        assert open(path).read() == cached

    def test_run_change_invalidates_the_cache(self, tmp_path):
        import os

        from repro.reporting import refresh_run_report, report_digest_path

        run = self._run(tmp_path)
        path, _hit = refresh_run_report(run)
        assert os.path.exists(report_digest_path(path))
        # Invalidate by removing the sidecar: no digest -> fresh render,
        # and the stale stamp must be cleared so it can never hit later.
        os.remove(run.columns_path)
        os.remove(os.path.join(run.points_dir, "point-0000.npz"))
        _path, hit = refresh_run_report(run)
        assert not hit
        assert not os.path.exists(report_digest_path(path))

    def test_write_run_report_still_returns_path(self, tmp_path):
        from repro.reporting import write_run_report

        run = self._run(tmp_path)
        path = write_run_report(run)
        assert path == run.report_path
        assert "# Run report: cache-spec" in open(path).read()
