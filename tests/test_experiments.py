"""Tests for the experiment harness: grids, seeding, Monte-Carlo, caching."""

import os

import numpy as np
import pytest

from repro.core.exceptions import InvalidParameterError
from repro.dp import solve
from repro.experiments import (
    DPTableCache,
    SweepGrid,
    SweepPoint,
    aggregate,
    cached_solve,
    point_seed,
    replicate_point,
    replicate_scenario,
    run_sweep,
)
from repro.experiments.orchestrator import parallel_map


# ----------------------------------------------------------------------
# Deterministic seeding
# ----------------------------------------------------------------------
class TestPointSeed:
    def test_stable_and_collision_free(self):
        assert point_seed(0, 1, 2) == point_seed(0, 1, 2)
        seeds = {point_seed(0, i, r) for i in range(30) for r in range(30)}
        assert len(seeds) == 900  # no collisions on a realistic grid

    def test_depends_on_every_coordinate(self):
        assert point_seed(0, 1, 2) != point_seed(1, 1, 2)
        assert point_seed(0, 1, 2) != point_seed(0, 2, 2)
        assert point_seed(0, 1, 2) != point_seed(0, 1, 3)

    def test_fits_in_numpy_seed_range(self):
        s = point_seed(123, "x", 7)
        assert 0 <= s < 2**63
        np.random.default_rng(s)  # must be accepted as a seed


# ----------------------------------------------------------------------
# Grid expansion
# ----------------------------------------------------------------------
class TestSweepGrid:
    def test_points_cover_the_product(self):
        grid = SweepGrid(lifespans=(100, 200), setup_costs=(1, 2),
                         interrupt_budgets=(1, 3),
                         schedulers=("equalizing-adaptive", "single-period"),
                         adversaries=("poisson-owner",))
        points = grid.points()
        assert len(points) == grid.size == 16
        assert [p.index for p in points] == list(range(16))
        combos = {(p.scheduler, p.setup_cost, p.max_interrupts, p.lifespan)
                  for p in points}
        assert len(combos) == 16

    def test_no_adversaries_means_analytic_points(self):
        grid = SweepGrid(lifespans=(100,))
        (point,) = grid.points()
        assert point.adversary is None

    def test_unknown_names_rejected(self):
        with pytest.raises(InvalidParameterError):
            SweepGrid(lifespans=(100,), schedulers=("nope",))
        with pytest.raises(InvalidParameterError):
            SweepGrid(lifespans=(100,), adversaries=("nope",))
        with pytest.raises(InvalidParameterError):
            SweepGrid(lifespans=())


# ----------------------------------------------------------------------
# Monte-Carlo layer
# ----------------------------------------------------------------------
class TestMonteCarlo:
    def test_aggregate_known_values(self):
        stats = aggregate([1.0, 2.0, 3.0, 4.0], "x")
        assert stats["x_n"] == 4
        assert stats["x_mean"] == pytest.approx(2.5)
        assert stats["x_std"] == pytest.approx(np.std([1, 2, 3, 4], ddof=1))
        assert stats["x_min"] == 1.0 and stats["x_max"] == 4.0
        assert stats["x_q50"] == pytest.approx(2.5)

    def test_single_value_has_zero_std(self):
        # A single replication must not apply the ddof=1 correction (which
        # would divide by zero); the sample std is defined as 0.0.
        stats = aggregate([7.0], "x")
        assert stats["x_std"] == 0.0 and stats["x_mean"] == 7.0
        assert stats["x_min"] == stats["x_max"] == 7.0
        assert stats["x_q10"] == stats["x_q50"] == stats["x_q90"] == 7.0

    def test_empty_input_reports_only_count(self):
        stats = aggregate([], "x")
        assert stats == {"x_n": 0}

    def test_quantile_keys_are_integer_percent(self):
        stats = aggregate([1.0, 2.0, 3.0], "eff")
        assert {"eff_q10", "eff_q50", "eff_q90"} <= set(stats)
        assert not any(key.startswith("eff_q0.") for key in stats)
        values = list(range(101))
        deciles = aggregate(values, "v")
        assert deciles["v_q10"] == pytest.approx(10.0)
        assert deciles["v_q90"] == pytest.approx(90.0)

    def test_two_values_use_sample_std(self):
        stats = aggregate([1.0, 3.0], "x")
        assert stats["x_std"] == pytest.approx(np.std([1.0, 3.0], ddof=1))

    def test_accepts_any_sequence_type(self):
        from_tuple = aggregate((2.0, 4.0), "x")
        from_generator = aggregate(iter([2.0, 4.0]), "x")
        assert from_tuple == from_generator

    def test_replication_is_deterministic(self):
        point = SweepPoint(index=0, lifespan=150.0, setup_cost=1.0,
                           max_interrupts=2, scheduler="equalizing-adaptive",
                           adversary="poisson-owner")
        a = replicate_point(point, 20, base_seed=5)
        b = replicate_point(point, 20, base_seed=5)
        assert a == b
        c = replicate_point(point, 20, base_seed=6)
        assert a["work_mean"] != c["work_mean"]

    def test_replicated_work_respects_the_guarantee(self):
        # Against *any* owner with at most p interrupts, every trace of an
        # adaptive guideline earns at least the guaranteed work.
        from repro import CycleStealingParams
        from repro.schedules import EqualizingAdaptiveScheduler

        point = SweepPoint(index=0, lifespan=200.0, setup_cost=1.0,
                           max_interrupts=2, scheduler="equalizing-adaptive",
                           adversary="random-period")
        stats = replicate_point(point, 30, base_seed=1)
        params = CycleStealingParams(lifespan=200.0, setup_cost=1.0,
                                     max_interrupts=2)
        guaranteed = EqualizingAdaptiveScheduler().guaranteed_work(params)
        assert stats["work_min"] >= guaranteed - 1e-9

    def test_requires_adversary_and_replications(self):
        point = SweepPoint(index=0, lifespan=100.0, setup_cost=1.0,
                           max_interrupts=1, scheduler="single-period")
        with pytest.raises(ValueError):
            replicate_point(point, 5)
        sampled = SweepPoint(index=0, lifespan=100.0, setup_cost=1.0,
                             max_interrupts=1, scheduler="single-period",
                             adversary="poisson-owner")
        with pytest.raises(ValueError):
            replicate_point(sampled, 0)

    def test_scenario_replication(self):
        from repro.workloads import flaky_owners

        stats = replicate_scenario(flaky_owners, 3, base_seed=2,
                                   num_machines=2, lifespan=120.0)
        assert stats["work_n"] == 3
        assert stats["work_mean"] > 0.0
        again = replicate_scenario(flaky_owners, 3, base_seed=2,
                                   num_machines=2, lifespan=120.0)
        assert stats == again


# ----------------------------------------------------------------------
# Orchestrator
# ----------------------------------------------------------------------
GRID = SweepGrid(lifespans=(100.0, 200.0), interrupt_budgets=(1, 2),
                 schedulers=("equalizing-adaptive", "rosenberg-nonadaptive"),
                 adversaries=("poisson-owner",))


class TestOrchestrator:
    def test_parallel_equals_serial(self):
        serial = run_sweep(GRID, jobs=1, replications=8, seed=11)
        fanned = run_sweep(GRID, jobs=4, replications=8, seed=11)
        assert serial == fanned

    def test_deterministic_for_fixed_seed(self):
        a = run_sweep(GRID, jobs=2, replications=8, seed=11)
        b = run_sweep(GRID, jobs=2, replications=8, seed=11)
        assert a == b
        c = run_sweep(GRID, jobs=2, replications=8, seed=12)
        assert a != c

    def test_montecarlo_mean_matches_single_trace_within_tolerance(self):
        # The acceptance check: many-replication means agree with the
        # serial single-trace sweep up to sampling noise.
        single = run_sweep(GRID, jobs=1, replications=1, seed=7)
        many = run_sweep(GRID, jobs=4, replications=50, seed=7)
        for s_row, m_row in zip(single, many):
            # Work lies in [guaranteed, lifespan]; with 50 replications the
            # mean must sit within a few standard errors of any trace.
            spread = max(3.0 * m_row["work_std"], 0.15 * m_row["lifespan"])
            assert abs(m_row["work_mean"] - s_row["work_mean"]) <= spread

    def test_optimal_column_via_cache(self, tmp_path):
        grid = SweepGrid(lifespans=(120.0,), interrupt_budgets=(2,),
                         schedulers=("equalizing-adaptive",))
        rows = run_sweep(grid, include_optimal=True,
                         cache_dir=str(tmp_path / "dp"))
        (row,) = rows
        expected = solve(120, 1, 2).value(2, 120)
        assert row["optimal_work"] == pytest.approx(float(expected))
        assert row["gap"] == pytest.approx(row["optimal_work"]
                                           - row["guaranteed_work"])

    def test_rows_keep_grid_order(self):
        rows = run_sweep(GRID, jobs=3, replications=2, seed=0)
        points = GRID.points()
        assert len(rows) == len(points)
        for row, point in zip(rows, points):
            assert row["scheduler"] == point.scheduler
            assert row["lifespan"] == point.lifespan
            assert row["max_interrupts"] == point.max_interrupts

    def test_parallel_map_serial_fallback(self):
        assert parallel_map(abs, [-1, 2, -3], jobs=1) == [1, 2, 3]

    def test_sweeps_route_through_orchestrator(self):
        from repro.analysis import (
            adaptive_guarantee_sweep,
            nonadaptive_guarantee_sweep,
        )

        serial = nonadaptive_guarantee_sweep([100.0, 200.0], 1.0, [1, 2])
        fanned = nonadaptive_guarantee_sweep([100.0, 200.0], 1.0, [1, 2], jobs=2)
        assert serial == fanned
        serial = adaptive_guarantee_sweep([100.0], 1.0, [1, 2])
        fanned = adaptive_guarantee_sweep([100.0], 1.0, [1, 2], jobs=2)
        assert serial == fanned


# ----------------------------------------------------------------------
# DP-table cache
# ----------------------------------------------------------------------
class TestDPTableCache:
    def test_memory_hit(self):
        cache = DPTableCache()
        a = cache.solve(80, 1, 2)
        b = cache.solve(80, 1, 2)
        assert a is b
        assert cache.stats.misses == 1 and cache.stats.memory_hits == 1

    def test_covering_lookup(self):
        cache = DPTableCache()
        big = cache.solve(100, 1, 3)
        small = cache.solve(50, 1, 2)
        assert small is big
        assert cache.stats.memory_hits == 1

    def test_covering_can_be_disabled(self):
        cache = DPTableCache(allow_covering=False)
        cache.solve(100, 1, 3)
        cache.solve(50, 1, 2)
        assert cache.stats.misses == 2

    def test_different_keys_miss(self):
        cache = DPTableCache()
        cache.solve(60, 1, 1)
        cache.solve(60, 2, 1)          # different setup cost
        cache.solve(60, 1, 1, method="reference")  # different method
        assert cache.stats.misses == 3

    def test_disk_roundtrip(self, tmp_path):
        cache_dir = str(tmp_path / "dp")
        first = DPTableCache(cache_dir=cache_dir)
        table = first.solve(70, 2, 2)
        # A fresh cache instance (fresh process in real sweeps) hits disk.
        second = DPTableCache(cache_dir=cache_dir)
        loaded = second.solve(70, 2, 2)
        assert second.stats.disk_hits == 1 and second.stats.misses == 0
        assert np.array_equal(loaded.values, table.values)
        assert np.array_equal(loaded.first_periods, table.first_periods)
        assert loaded.setup_cost == table.setup_cost

    def test_corrupt_disk_file_is_recomputed(self, tmp_path):
        cache_dir = str(tmp_path / "dp")
        DPTableCache(cache_dir=cache_dir).solve(40, 1, 1)
        (path,) = [os.path.join(cache_dir, f) for f in os.listdir(cache_dir)]
        with open(path, "wb") as handle:
            handle.write(b"not an npz archive")
        cache = DPTableCache(cache_dir=cache_dir)
        table = cache.solve(40, 1, 1)
        assert cache.stats.misses == 1  # corrupt file treated as a miss
        assert np.array_equal(table.values, solve(40, 1, 1).values)
        # ... and the rewritten file is healthy again.
        fresh = DPTableCache(cache_dir=cache_dir)
        fresh.solve(40, 1, 1)
        assert fresh.stats.disk_hits == 1

    def test_lru_eviction(self):
        cache = DPTableCache(max_memory_entries=2, allow_covering=False)
        cache.solve(30, 1, 1)
        cache.solve(31, 1, 1)
        cache.solve(32, 1, 1)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        cache.solve(30, 1, 1)  # evicted -> miss again (no disk level)
        assert cache.stats.misses == 4

    def test_non_integer_key_rejected(self):
        with pytest.raises(InvalidParameterError):
            DPTableCache().solve(10.5, 1, 1)

    def test_cached_solve_convenience(self, tmp_path):
        cache = DPTableCache(cache_dir=str(tmp_path))
        a = cached_solve(25, 1, 1, cache=cache)
        assert np.array_equal(a.values, solve(25, 1, 1).values)

    def test_clear(self, tmp_path):
        cache = DPTableCache(cache_dir=str(tmp_path / "dp"))
        cache.solve(20, 1, 1)
        cache.clear(memory=True, disk=True)
        assert len(cache) == 0
        assert not any(name.endswith(".npz")
                       for name in os.listdir(str(tmp_path / "dp")))


class TestGapCacheWiring:
    def test_optimality_gap_resolves_table_from_cache(self):
        from repro import CycleStealingParams
        from repro.analysis import optimality_gap
        from repro.schedules import EqualizingAdaptiveScheduler

        cache = DPTableCache()
        params = CycleStealingParams(lifespan=90.0, setup_cost=1.0,
                                     max_interrupts=2)
        report = optimality_gap(EqualizingAdaptiveScheduler(), params,
                                cache=cache)
        assert report.optimal_work == pytest.approx(solve(90, 1, 2).value(2, 90))
        # Second measurement reuses the cached table.
        optimality_gap(EqualizingAdaptiveScheduler(), params, cache=cache)
        assert cache.stats.misses == 1 and cache.stats.memory_hits == 1

    def test_dp_table_for_rejects_fractional_params(self):
        from repro import CycleStealingParams
        from repro.analysis import dp_table_for

        params = CycleStealingParams(lifespan=10.5, setup_cost=1.0,
                                     max_interrupts=1)
        with pytest.raises(ValueError):
            dp_table_for(params, cache=DPTableCache())
