"""Smoke tests for the command-line interface."""

import os

import pytest

from repro.cli import CACHE_DIR_HELP, build_parser, main

_REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_parses_each_command(self):
        parser = build_parser()
        assert parser.parse_args(["table1"]).command == "table1"
        assert parser.parse_args(["table2"]).command == "table2"
        assert parser.parse_args(["nonadaptive"]).command == "nonadaptive"
        assert parser.parse_args(["adaptive"]).command == "adaptive"
        assert parser.parse_args(["gap"]).command == "gap"
        assert parser.parse_args(["simulate"]).command == "simulate"
        assert parser.parse_args(["sweep"]).command == "sweep"

    def test_sweep_flags(self):
        args = build_parser().parse_args(
            ["sweep", "--jobs", "4", "--replications", "50", "--seed", "3",
             "--cache-dir", "/tmp/x", "--adversaries", "poisson-owner"])
        assert args.jobs == 4 and args.replications == 50
        assert args.seed == 3 and args.cache_dir == "/tmp/x"
        assert args.adversaries == ["poisson-owner"]
        assert args.backend == "event"  # reference backend is the default

    def test_backend_flags(self):
        parser = build_parser()
        assert parser.parse_args(["sweep", "--backend", "batch"]).backend == "batch"
        assert parser.parse_args(["simulate", "--backend", "batch"]).backend == "batch"
        with pytest.raises(SystemExit):
            parser.parse_args(["sweep", "--backend", "warp"])

    def test_run_resume_report_flags(self):
        parser = build_parser()
        args = parser.parse_args(["run", "specs/laptop.toml", "--jobs", "2",
                                  "--replications", "5", "--runs-dir", "/tmp/r",
                                  "--run-id", "rid", "--max-points", "3",
                                  "--resume"])
        assert args.command == "run" and args.spec == "specs/laptop.toml"
        assert args.jobs == 2 and args.replications == 5
        assert args.runs_dir == "/tmp/r" and args.run_id == "rid"
        assert args.max_points == 3 and args.resume is True
        args = parser.parse_args(["resume", "rid"])
        assert args.command == "resume" and args.run_id == "rid"
        args = parser.parse_args(["report", "rid", "--output", "-"])
        assert args.command == "report" and args.output == "-"

    def test_cache_dir_default_is_disabled_everywhere(self):
        """The help text, the README and the code must agree on the default.

        The default on-disk cache location regressed once (help text and
        README described different defaults); this pins all three sources
        to the single CACHE_DIR_HELP constant and the actual None default.
        """
        parser = build_parser()
        for command in (["sweep"], ["gap"], ["run", "spec.toml"],
                        ["resume", "rid"]):
            assert parser.parse_args(command).cache_dir is None, command
        assert "default: disabled" in CACHE_DIR_HELP
        readme = open(os.path.join(_REPO_ROOT, "README.md")).read()
        assert "default: disabled — DP tables are cached in memory" in readme

    def test_cache_dir_help_text_matches_constant(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--help"])
        help_text = capsys.readouterr().out
        # argparse re-wraps the text; compare whitespace-normalised.
        assert " ".join(CACHE_DIR_HELP.split()) in " ".join(help_text.split())

    def test_simulate_accepts_registry_and_legacy_names(self):
        parser = build_parser()
        assert parser.parse_args(["simulate"]).scheduler == "equalizing-adaptive"
        assert parser.parse_args(
            ["simulate", "--scheduler", "equalizing"]).scheduler == "equalizing"
        assert parser.parse_args(
            ["simulate", "--scheduler", "geometric"]).scheduler == "geometric"
        with pytest.raises(SystemExit):
            parser.parse_args(["simulate", "--scheduler", "nope"])


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1", "-U", "50", "-c", "1", "-p", "1"]) == 0
        out = capsys.readouterr().out
        assert "no interrupt" in out

    def test_table2(self, capsys):
        assert main(["table2", "--lifespans", "100", "400"]) == 0
        out = capsys.readouterr().out
        assert "opt_num_periods" in out

    def test_nonadaptive(self, capsys):
        assert main(["nonadaptive", "--lifespans", "200", "--interrupts", "1", "2"]) == 0
        assert "measured_work" in capsys.readouterr().out

    def test_adaptive(self, capsys):
        assert main(["adaptive", "--lifespans", "200", "--interrupts", "1"]) == 0
        assert "theorem51_bound" in capsys.readouterr().out

    def test_gap(self, capsys):
        assert main(["gap", "-U", "300", "-c", "1", "-p", "2"]) == 0
        out = capsys.readouterr().out
        assert "dp-optimal" in out

    def test_simulate(self, capsys):
        assert main(["simulate", "--scenario", "laptop", "--scheduler", "equalizing"]) == 0
        assert "laptop-0" in capsys.readouterr().out

    def test_csv_output(self, tmp_path, capsys):
        path = tmp_path / "rows.csv"
        assert main(["--csv", str(path), "table2", "--lifespans", "100"]) == 0
        assert path.exists()
        assert "lifespan" in path.read_text()

    def test_simulate_new_scenarios(self, capsys):
        assert main(["simulate", "--scenario", "office", "--seed", "5"]) == 0
        assert "office-0" in capsys.readouterr().out
        assert main(["simulate", "--scenario", "flaky"]) == 0
        assert "flaky-0" in capsys.readouterr().out
        assert main(["simulate", "--scenario", "cluster"]) == 0
        assert "node-0" in capsys.readouterr().out

    def test_simulate_batch_backend_prints_same_rows(self, capsys):
        assert main(["simulate", "--scenario", "laptop", "--backend", "event"]) == 0
        event_out = capsys.readouterr().out
        assert main(["simulate", "--scenario", "laptop", "--backend", "batch"]) == 0
        batch_out = capsys.readouterr().out
        assert event_out == batch_out  # bit-identical reports, same table

    def test_sweep_batch_backend(self, capsys):
        assert main(["sweep", "--lifespans", "150", "--interrupts", "1",
                     "--schedulers", "equalizing-adaptive",
                     "--adversaries", "poisson-owner",
                     "--replications", "5", "--seed", "1",
                     "--backend", "batch"]) == 0
        assert "work_mean" in capsys.readouterr().out

    def test_sweep_analytic(self, capsys):
        assert main(["sweep", "--lifespans", "100", "--interrupts", "1",
                     "--schedulers", "equalizing-adaptive"]) == 0
        out = capsys.readouterr().out
        assert "guaranteed_work" in out

    def test_sweep_montecarlo_with_cache(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "dp")
        assert main(["sweep", "--lifespans", "100", "--interrupts", "1",
                     "--schedulers", "equalizing-adaptive",
                     "--adversaries", "poisson-owner",
                     "--replications", "5", "--seed", "1", "--jobs", "2",
                     "--optimal", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "work_mean" in out and "optimal_work" in out
        assert any(name.endswith(".npz") for name in os.listdir(cache_dir))

    def test_gap_with_cache_dir(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "dp")
        assert main(["gap", "-U", "200", "-p", "1",
                     "--cache-dir", cache_dir]) == 0
        assert "dp-optimal" in capsys.readouterr().out
        assert any(name.endswith(".npz") for name in os.listdir(cache_dir))

    def test_gap_covers_every_registered_scheduler(self, capsys):
        from repro.registry import SCHEDULERS

        assert main(["gap", "-U", "200", "-c", "1", "-p", "1"]) == 0
        out = capsys.readouterr().out
        for name in SCHEDULERS.names():
            assert name in out

    def test_simulate_legacy_alias_matches_registry_name(self, capsys):
        assert main(["simulate", "--scenario", "laptop",
                     "--scheduler", "equalizing"]) == 0
        legacy = capsys.readouterr().out
        assert main(["simulate", "--scenario", "laptop",
                     "--scheduler", "equalizing-adaptive"]) == 0
        assert legacy == capsys.readouterr().out

    def test_simulate_legacy_fixed_alias_keeps_u_over_20_period(self, capsys):
        """`--scheduler fixed` predates the registry and sized periods as
        U/20; the registry's fixed-period factory uses max(10, U/50).  The
        alias must keep its historical sizing so old invocations reproduce.
        """
        assert main(["simulate", "--scenario", "laptop",
                     "--scheduler", "fixed"]) == 0
        legacy = capsys.readouterr().out
        assert main(["simulate", "--scenario", "laptop",
                     "--scheduler", "fixed-period"]) == 0
        registry_out = capsys.readouterr().out
        assert legacy != registry_out  # different period sizing by design

    def test_simulate_rejects_nonadaptive_scheduler_with_message(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["simulate", "--scenario", "laptop",
                  "--scheduler", "rosenberg-nonadaptive"])
        assert "NOW simulator" in str(excinfo.value)
        assert "equalizing-adaptive" in str(excinfo.value)

    def test_simulate_new_families(self, capsys):
        assert main(["simulate", "--scenario", "diurnal"]) == 0
        assert "diurnal-0" in capsys.readouterr().out
        assert main(["simulate", "--scenario", "fleet", "--backend", "batch"]) == 0
        assert "fleet-laptop-0" in capsys.readouterr().out


class TestRunCommands:
    """End-to-end `run` / `resume` / `report` through main()."""

    SPEC = """\
[experiment]
name = "cli-spec"
kind = "scenario"
seed = 0
replications = 4
backend = "batch"

[scenario]
family = "laptop"
schedulers = ["equalizing-adaptive", "fixed-period"]
"""

    def _write_spec(self, tmp_path):
        path = tmp_path / "spec.toml"
        path.write_text(self.SPEC)
        return str(path)

    def test_run_then_report(self, tmp_path, capsys):
        spec = self._write_spec(tmp_path)
        runs = str(tmp_path / "runs")
        assert main(["run", spec, "--runs-dir", runs, "--run-id", "r1"]) == 0
        out = capsys.readouterr().out
        assert "work_mean" in out
        assert main(["report", "r1", "--runs-dir", runs]) == 0
        report = capsys.readouterr().out
        assert "# Run report: cli-spec" in report
        assert os.path.exists(os.path.join(runs, "r1", "report.md"))

    def test_run_replications_override(self, tmp_path, capsys):
        spec = self._write_spec(tmp_path)
        runs = str(tmp_path / "runs")
        assert main(["run", spec, "--runs-dir", runs, "--run-id", "r2",
                     "--replications", "2"]) == 0
        capsys.readouterr()
        assert main(["report", "r2", "--runs-dir", runs, "--output", "-"]) == 0
        assert "**replications**: 2" in capsys.readouterr().out

    def test_run_max_points_then_resume(self, tmp_path, capsys):
        spec = self._write_spec(tmp_path)
        runs = str(tmp_path / "runs")
        assert main(["run", spec, "--runs-dir", runs, "--run-id", "r3",
                     "--max-points", "1"]) == 0
        capsys.readouterr()
        assert main(["resume", "r3", "--runs-dir", runs]) == 0
        out = capsys.readouterr()
        assert "complete (2/2 points)" in out.err

    def test_run_rejects_malformed_spec_with_message(self, tmp_path, capsys):
        from repro.specs import SpecError

        bad = tmp_path / "bad.toml"
        bad.write_text("[experiment]\nname = \"x\"\nkind = \"warp\"\n")
        with pytest.raises(SpecError) as excinfo:
            main(["run", str(bad)])
        assert "warp" in str(excinfo.value)
        assert "bad.toml" in str(excinfo.value)

    def test_csv_works_with_run_rows(self, tmp_path):
        spec = self._write_spec(tmp_path)
        runs = str(tmp_path / "runs")
        csv_path = tmp_path / "rows.csv"
        assert main(["--csv", str(csv_path), "run", spec, "--runs-dir", runs,
                     "--run-id", "r4", "--replications", "2"]) == 0
        assert "work_mean" in csv_path.read_text()


class TestReportCacheCLI:
    """`repro report` digest caching and profiling through main()."""

    SPEC = TestRunCommands.SPEC

    def _complete_run(self, tmp_path):
        path = tmp_path / "spec.toml"
        path.write_text(self.SPEC)
        runs = str(tmp_path / "runs")
        assert main(["run", str(path), "--runs-dir", runs,
                     "--run-id", "rc"]) == 0
        return runs

    def test_second_report_hits_force_matches(self, tmp_path, capsys):
        runs = self._complete_run(tmp_path)
        capsys.readouterr()
        assert main(["report", "rc", "--runs-dir", runs]) == 0
        assert "report-cache: miss" in capsys.readouterr().err
        assert main(["report", "rc", "--runs-dir", runs]) == 0
        captured = capsys.readouterr()
        assert "report-cache: hit" in captured.err
        assert "# Run report: cli-spec" in captured.out
        cached = open(os.path.join(runs, "rc", "report.md")).read()
        assert main(["report", "rc", "--runs-dir", runs, "--force"]) == 0
        assert "report-cache: miss" in capsys.readouterr().err
        assert open(os.path.join(runs, "rc", "report.md")).read() == cached

    def test_print_only_mode_never_touches_the_cache(self, tmp_path, capsys):
        runs = self._complete_run(tmp_path)
        capsys.readouterr()
        assert main(["report", "rc", "--runs-dir", runs, "--output", "-"]) == 0
        captured = capsys.readouterr()
        assert "report-cache" not in captured.err
        assert not os.path.exists(os.path.join(runs, "rc", "report.md"))

    def test_report_profile_prints_render_stage(self, tmp_path, capsys):
        runs = self._complete_run(tmp_path)
        capsys.readouterr()
        assert main(["report", "rc", "--runs-dir", runs, "--profile"]) == 0
        assert "report_render" in capsys.readouterr().err
