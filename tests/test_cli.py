"""Smoke tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_parses_each_command(self):
        parser = build_parser()
        assert parser.parse_args(["table1"]).command == "table1"
        assert parser.parse_args(["table2"]).command == "table2"
        assert parser.parse_args(["nonadaptive"]).command == "nonadaptive"
        assert parser.parse_args(["adaptive"]).command == "adaptive"
        assert parser.parse_args(["gap"]).command == "gap"
        assert parser.parse_args(["simulate"]).command == "simulate"


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1", "-U", "50", "-c", "1", "-p", "1"]) == 0
        out = capsys.readouterr().out
        assert "no interrupt" in out

    def test_table2(self, capsys):
        assert main(["table2", "--lifespans", "100", "400"]) == 0
        out = capsys.readouterr().out
        assert "opt_num_periods" in out

    def test_nonadaptive(self, capsys):
        assert main(["nonadaptive", "--lifespans", "200", "--interrupts", "1", "2"]) == 0
        assert "measured_work" in capsys.readouterr().out

    def test_adaptive(self, capsys):
        assert main(["adaptive", "--lifespans", "200", "--interrupts", "1"]) == 0
        assert "theorem51_bound" in capsys.readouterr().out

    def test_gap(self, capsys):
        assert main(["gap", "-U", "300", "-c", "1", "-p", "2"]) == 0
        out = capsys.readouterr().out
        assert "dp-optimal" in out

    def test_simulate(self, capsys):
        assert main(["simulate", "--scenario", "laptop", "--scheduler", "equalizing"]) == 0
        assert "laptop-0" in capsys.readouterr().out

    def test_csv_output(self, tmp_path, capsys):
        path = tmp_path / "rows.csv"
        assert main(["--csv", str(path), "table2", "--lifespans", "100"]) == 0
        assert path.exists()
        assert "lifespan" in path.read_text()
