"""Smoke tests for the command-line interface."""

import os

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_parses_each_command(self):
        parser = build_parser()
        assert parser.parse_args(["table1"]).command == "table1"
        assert parser.parse_args(["table2"]).command == "table2"
        assert parser.parse_args(["nonadaptive"]).command == "nonadaptive"
        assert parser.parse_args(["adaptive"]).command == "adaptive"
        assert parser.parse_args(["gap"]).command == "gap"
        assert parser.parse_args(["simulate"]).command == "simulate"
        assert parser.parse_args(["sweep"]).command == "sweep"

    def test_sweep_flags(self):
        args = build_parser().parse_args(
            ["sweep", "--jobs", "4", "--replications", "50", "--seed", "3",
             "--cache-dir", "/tmp/x", "--adversaries", "poisson-owner"])
        assert args.jobs == 4 and args.replications == 50
        assert args.seed == 3 and args.cache_dir == "/tmp/x"
        assert args.adversaries == ["poisson-owner"]
        assert args.backend == "event"  # reference backend is the default

    def test_backend_flags(self):
        parser = build_parser()
        assert parser.parse_args(["sweep", "--backend", "batch"]).backend == "batch"
        assert parser.parse_args(["simulate", "--backend", "batch"]).backend == "batch"
        with pytest.raises(SystemExit):
            parser.parse_args(["sweep", "--backend", "warp"])


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1", "-U", "50", "-c", "1", "-p", "1"]) == 0
        out = capsys.readouterr().out
        assert "no interrupt" in out

    def test_table2(self, capsys):
        assert main(["table2", "--lifespans", "100", "400"]) == 0
        out = capsys.readouterr().out
        assert "opt_num_periods" in out

    def test_nonadaptive(self, capsys):
        assert main(["nonadaptive", "--lifespans", "200", "--interrupts", "1", "2"]) == 0
        assert "measured_work" in capsys.readouterr().out

    def test_adaptive(self, capsys):
        assert main(["adaptive", "--lifespans", "200", "--interrupts", "1"]) == 0
        assert "theorem51_bound" in capsys.readouterr().out

    def test_gap(self, capsys):
        assert main(["gap", "-U", "300", "-c", "1", "-p", "2"]) == 0
        out = capsys.readouterr().out
        assert "dp-optimal" in out

    def test_simulate(self, capsys):
        assert main(["simulate", "--scenario", "laptop", "--scheduler", "equalizing"]) == 0
        assert "laptop-0" in capsys.readouterr().out

    def test_csv_output(self, tmp_path, capsys):
        path = tmp_path / "rows.csv"
        assert main(["--csv", str(path), "table2", "--lifespans", "100"]) == 0
        assert path.exists()
        assert "lifespan" in path.read_text()

    def test_simulate_new_scenarios(self, capsys):
        assert main(["simulate", "--scenario", "office", "--seed", "5"]) == 0
        assert "office-0" in capsys.readouterr().out
        assert main(["simulate", "--scenario", "flaky"]) == 0
        assert "flaky-0" in capsys.readouterr().out
        assert main(["simulate", "--scenario", "cluster"]) == 0
        assert "node-0" in capsys.readouterr().out

    def test_simulate_batch_backend_prints_same_rows(self, capsys):
        assert main(["simulate", "--scenario", "laptop", "--backend", "event"]) == 0
        event_out = capsys.readouterr().out
        assert main(["simulate", "--scenario", "laptop", "--backend", "batch"]) == 0
        batch_out = capsys.readouterr().out
        assert event_out == batch_out  # bit-identical reports, same table

    def test_sweep_batch_backend(self, capsys):
        assert main(["sweep", "--lifespans", "150", "--interrupts", "1",
                     "--schedulers", "equalizing-adaptive",
                     "--adversaries", "poisson-owner",
                     "--replications", "5", "--seed", "1",
                     "--backend", "batch"]) == 0
        assert "work_mean" in capsys.readouterr().out

    def test_sweep_analytic(self, capsys):
        assert main(["sweep", "--lifespans", "100", "--interrupts", "1",
                     "--schedulers", "equalizing-adaptive"]) == 0
        out = capsys.readouterr().out
        assert "guaranteed_work" in out

    def test_sweep_montecarlo_with_cache(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "dp")
        assert main(["sweep", "--lifespans", "100", "--interrupts", "1",
                     "--schedulers", "equalizing-adaptive",
                     "--adversaries", "poisson-owner",
                     "--replications", "5", "--seed", "1", "--jobs", "2",
                     "--optimal", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "work_mean" in out and "optimal_work" in out
        assert any(name.endswith(".npz") for name in os.listdir(cache_dir))

    def test_gap_with_cache_dir(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "dp")
        assert main(["gap", "-U", "200", "-p", "1",
                     "--cache-dir", cache_dir]) == 0
        assert "dp-optimal" in capsys.readouterr().out
        assert any(name.endswith(".npz") for name in os.listdir(cache_dir))
