"""Unit tests for interrupt patterns."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import InvalidInterruptError, PeriodEndInterrupts, TimedInterrupts


class TestPeriodEndInterrupts:
    def test_basic(self):
        p = PeriodEndInterrupts([2, 5, 7])
        assert p.count == 3
        assert not p.is_empty
        assert p.last_index == 7
        assert p.contains(5)
        assert not p.contains(4)

    def test_empty(self):
        p = PeriodEndInterrupts()
        assert p.is_empty and p.count == 0 and p.last_index == 0

    def test_rejects_zero_and_negative_indices(self):
        with pytest.raises(InvalidInterruptError):
            PeriodEndInterrupts([0])
        with pytest.raises(InvalidInterruptError):
            PeriodEndInterrupts([-3])

    def test_rejects_non_increasing(self):
        with pytest.raises(InvalidInterruptError):
            PeriodEndInterrupts([3, 3])
        with pytest.raises(InvalidInterruptError):
            PeriodEndInterrupts([5, 2])

    def test_validate_budget(self):
        p = PeriodEndInterrupts([1, 2, 3])
        p.validate(num_periods=5, max_interrupts=3)
        with pytest.raises(InvalidInterruptError):
            p.validate(num_periods=5, max_interrupts=2)
        with pytest.raises(InvalidInterruptError):
            p.validate(num_periods=2, max_interrupts=5)

    def test_last_periods_constructor(self):
        p = PeriodEndInterrupts.last_periods(10, 3)
        assert p.indices == (8, 9, 10)

    def test_last_periods_clips(self):
        p = PeriodEndInterrupts.last_periods(2, 5)
        assert p.indices == (1, 2)

    @given(st.integers(min_value=1, max_value=50), st.integers(min_value=0, max_value=10))
    def test_last_periods_always_valid(self, m, count):
        p = PeriodEndInterrupts.last_periods(m, count)
        p.validate(num_periods=m, max_interrupts=max(count, p.count))
        assert p.count == min(m, count)


class TestTimedInterrupts:
    def test_basic(self):
        t = TimedInterrupts([1.0, 2.5, 2.5, 9.0])
        assert t.count == 4
        assert not t.is_empty

    def test_rejects_negative_and_nan(self):
        with pytest.raises(InvalidInterruptError):
            TimedInterrupts([-1.0])
        with pytest.raises(InvalidInterruptError):
            TimedInterrupts([float("nan")])

    def test_rejects_decreasing(self):
        with pytest.raises(InvalidInterruptError):
            TimedInterrupts([3.0, 1.0])

    def test_validate(self):
        t = TimedInterrupts([1.0, 2.0])
        t.validate(lifespan=5.0, max_interrupts=2)
        with pytest.raises(InvalidInterruptError):
            t.validate(lifespan=5.0, max_interrupts=1)
        with pytest.raises(InvalidInterruptError):
            t.validate(lifespan=2.0, max_interrupts=5)

    def test_within(self):
        t = TimedInterrupts([1.0, 2.0, 5.0])
        assert t.within(1.5, 5.0) == (2.0,)
        assert t.within(0.0, 10.0) == (1.0, 2.0, 5.0)

    def test_first_after(self):
        t = TimedInterrupts([1.0, 4.0])
        assert t.first_after(0.0) == 1.0
        assert t.first_after(2.0) == 4.0
        assert t.first_after(5.0) == float("inf")

    def test_evenly_spaced(self):
        t = TimedInterrupts.evenly_spaced(10.0, 4)
        assert t.times == (2.0, 4.0, 6.0, 8.0)
        assert TimedInterrupts.evenly_spaced(10.0, 0).is_empty

    def test_from_sorted(self):
        assert TimedInterrupts.from_sorted([0.5, 1.5]).count == 2

    @given(st.floats(min_value=1.0, max_value=1e6), st.integers(min_value=1, max_value=20))
    def test_evenly_spaced_inside_lifespan(self, lifespan, count):
        t = TimedInterrupts.evenly_spaced(lifespan, count)
        t.validate(lifespan=lifespan, max_interrupts=count)
        assert t.count == count
