"""Chunked streaming aggregation through the replication pipeline.

Pins the streaming pipeline's end-to-end contracts: chunking never changes
a result bit (absolute-index seeding + sequential accumulators), ``auto``
resolves deterministically from the replication count alone, streaming
mean/std track exact aggregation to 1e-9, the spec/digest layer treats
``chunk_size`` as an execution knob (never part of a run's identity), and
``--profile`` surfaces per-chunk stage accounting.
"""

import pytest

from repro.experiments import SweepGrid, SweepPoint, replicate_point, run_sweep
from repro.experiments.montecarlo import (
    AGGREGATIONS,
    STREAMING_AUTO_THRESHOLD,
    replicate_scenario,
    resolve_aggregation,
    resolve_chunk_size,
)
from repro.workloads import flaky_owners, laptop_evening

TOL = 1e-9

POINT = SweepPoint(index=3, lifespan=400.0, setup_cost=1.0, max_interrupts=2,
                   scheduler="equalizing-adaptive", adversary="poisson-owner")
NONADAPTIVE_POINT = SweepPoint(index=1, lifespan=300.0, setup_cost=1.0,
                               max_interrupts=2,
                               scheduler="rosenberg-nonadaptive",
                               adversary="uniform-owner")


class TestResolution:
    def test_auto_threshold(self):
        assert resolve_aggregation("auto", STREAMING_AUTO_THRESHOLD) == "exact"
        assert resolve_aggregation("auto",
                                   STREAMING_AUTO_THRESHOLD + 1) == "streaming"
        assert resolve_aggregation("exact", 10**9) == "exact"
        assert resolve_aggregation("streaming", 1) == "streaming"
        assert AGGREGATIONS == ("exact", "streaming", "auto")

    def test_unknown_aggregation_rejected(self):
        with pytest.raises(ValueError, match="unknown aggregation"):
            resolve_aggregation("online", 10)
        with pytest.raises(ValueError, match="unknown aggregation"):
            replicate_point(POINT, 5, aggregation="bogus")

    def test_chunk_size_resolution(self):
        assert resolve_chunk_size(17, 1000) == 17
        # Auto-sizing is bounded and grows with the replication count.
        assert resolve_chunk_size(None, 100) == 256
        assert resolve_chunk_size(None, 40_000) == 5_000
        assert resolve_chunk_size(None, 10**6) == 8192
        with pytest.raises(ValueError, match="chunk_size"):
            resolve_chunk_size(0, 1000)


class TestPointChunking:
    @pytest.mark.parametrize("backend", ["event", "batch"])
    def test_chunking_never_changes_results(self, backend):
        point = POINT if backend == "event" else NONADAPTIVE_POINT
        rows = [replicate_point(point, 50, base_seed=7, backend=backend,
                                aggregation="streaming", chunk_size=chunk)
                for chunk in (7, 16, 64)]
        assert rows[0] == rows[1] == rows[2]

    @pytest.mark.parametrize("backend", ["event", "batch"])
    def test_streaming_tracks_exact(self, backend):
        exact = replicate_point(POINT, 60, base_seed=2, backend=backend,
                                aggregation="exact")
        streaming = replicate_point(POINT, 60, base_seed=2, backend=backend,
                                    aggregation="streaming", chunk_size=13)
        assert set(exact) == set(streaming)
        assert exact["quantile_method"] == "exact"
        assert streaming["quantile_method"] == "p2"
        for key in exact:
            if any(key.endswith(s) for s in ("_n", "_mean", "_std",
                                             "_min", "_max")):
                assert abs(exact[key] - streaming[key]) \
                    <= TOL * max(1.0, abs(exact[key])), key

    def test_auto_keeps_small_runs_exact(self):
        default = replicate_point(POINT, 30, base_seed=5)
        exact = replicate_point(POINT, 30, base_seed=5, aggregation="exact")
        assert default == exact
        assert default["quantile_method"] == "exact"

    def test_profile_records_chunks(self):
        profile = {}
        replicate_point(POINT, 50, base_seed=1, aggregation="streaming",
                        chunk_size=20, profile=profile)
        assert profile["mc_chunks"] == 3.0  # ceil(50 / 20)
        assert profile["mc_chunk_s_max"] >= 0.0
        exact_profile = {}
        replicate_point(POINT, 10, base_seed=1, aggregation="exact",
                        profile=exact_profile)
        assert exact_profile["mc_chunks"] == 1.0


class TestScenarioChunking:
    def test_chunking_never_changes_results(self):
        rows = [replicate_scenario(flaky_owners, 20, base_seed=3,
                                   backend="batch", aggregation="streaming",
                                   chunk_size=chunk)
                for chunk in (3, 8, 50)]
        assert rows[0] == rows[1] == rows[2]

    def test_streaming_tracks_exact(self):
        exact = replicate_scenario(laptop_evening, 24, base_seed=1,
                                   backend="batch", aggregation="exact")
        streaming = replicate_scenario(laptop_evening, 24, base_seed=1,
                                       backend="batch",
                                       aggregation="streaming", chunk_size=7)
        for key in exact:
            if any(key.endswith(s) for s in ("_n", "_mean", "_std",
                                             "_min", "_max")):
                assert abs(exact[key] - streaming[key]) \
                    <= TOL * max(1.0, abs(exact[key])), key

    def test_event_and_batch_streaming_agree_exactly(self):
        event = replicate_scenario(flaky_owners, 12, base_seed=6,
                                   backend="event", aggregation="streaming",
                                   chunk_size=5)
        batch = replicate_scenario(flaky_owners, 12, base_seed=6,
                                   backend="batch", aggregation="streaming",
                                   chunk_size=5)
        assert event == batch


class TestSweepPlumbing:
    GRID = SweepGrid(lifespans=(200.0, 400.0), interrupt_budgets=(1,),
                     schedulers=("equalizing-adaptive",),
                     adversaries=("poisson-owner",))

    def test_sweep_chunk_size_is_not_a_results_knob(self):
        small = run_sweep(self.GRID, jobs=1, replications=12, seed=4,
                          include_guaranteed=False, backend="batch",
                          aggregation="streaming", chunk_size=5)
        large = run_sweep(self.GRID, jobs=1, replications=12, seed=4,
                          include_guaranteed=False, backend="batch",
                          aggregation="streaming", chunk_size=64)
        assert small == large

    def test_sweep_validates_aggregation(self):
        with pytest.raises(ValueError, match="unknown aggregation"):
            run_sweep(self.GRID, replications=2, aggregation="nope")
        with pytest.raises(ValueError, match="chunk_size"):
            run_sweep(self.GRID, replications=2, chunk_size=-3)


class TestSpecPlumbing:
    @staticmethod
    def spec_data(**experiment_overrides):
        experiment = {"name": "chunked", "kind": "sweep", "replications": 8,
                      "seed": 2, "aggregation": "streaming", "chunk_size": 4}
        experiment.update(experiment_overrides)
        experiment = {k: v for k, v in experiment.items() if v is not None}
        return {
            "experiment": experiment,
            "sweep": {"lifespans": [150.0, 200.0], "interrupts": [1],
                      "schedulers": ["equalizing-adaptive"],
                      "adversaries": ["poisson-owner"]},
        }

    def parse(self, **experiment_overrides):
        from repro.specs import parse_spec
        return parse_spec(self.spec_data(**experiment_overrides),
                          source="test.toml")

    def test_spec_round_trip(self):
        from repro.specs import spec_to_dict
        spec = self.parse()
        assert spec.aggregation == "streaming"
        assert spec.chunk_size == 4
        out = spec_to_dict(spec)
        assert out["experiment"]["aggregation"] == "streaming"
        assert out["experiment"]["chunk_size"] == 4

    def test_defaults_omitted_from_canonical_dict(self):
        # Older specs never mention aggregation/chunk_size; the canonical
        # dict (and hence canonical JSON and default run ids) must stay
        # byte-identical for them.
        from repro.specs import spec_to_dict
        spec = self.parse(aggregation=None, chunk_size=None)
        assert spec.aggregation == "auto"
        assert spec.chunk_size is None
        out = spec_to_dict(spec)
        assert "aggregation" not in out["experiment"]
        assert "chunk_size" not in out["experiment"]

    def test_invalid_values_rejected(self):
        from repro.specs import SpecError
        with pytest.raises(SpecError, match="aggregation"):
            self.parse(aggregation="bogus")
        with pytest.raises(SpecError, match="chunk_size"):
            self.parse(chunk_size=0)

    def test_chunk_size_never_in_payload_digest(self):
        # chunk_size is an execution knob: two specs differing only in it
        # must produce identical point digests (so a resume with a
        # different chunk size reuses the same run identity and rows).
        from repro.specs import expand_payloads, payload_digest
        base = self.parse()
        rechunked = self.parse(chunk_size=100)
        for a, b in zip(expand_payloads(base), expand_payloads(rechunked)):
            assert payload_digest(a) == payload_digest(b)

    def test_aggregation_is_in_payload_digest_when_pinned(self):
        from repro.specs import expand_payloads, payload_digest
        streaming = self.parse()
        exact = self.parse(aggregation="exact")
        auto = self.parse(aggregation=None)
        legacy = self.parse(aggregation=None, chunk_size=None)
        for s, e, a, l in zip(*(expand_payloads(spec) for spec in
                                (streaming, exact, auto, legacy))):
            assert payload_digest(s) != payload_digest(e)
            # "auto" is the compatibility default: digests match pre-
            # streaming runs regardless of chunk_size.
            assert payload_digest(a) == payload_digest(l)

    def test_spec_run_executes_streaming(self, tmp_path):
        from repro.runstore import run_spec
        run = run_spec(self.parse(), runs_dir=str(tmp_path))
        rows = run.rows()
        assert rows and all(row["quantile_method"] == "p2" for row in rows
                            if row.get("work_mean") is not None)

    def test_chunked_resume_is_byte_identical(self, tmp_path):
        # A streaming run checkpointed mid-grid and resumed must serve
        # byte-identical rows to an uninterrupted run, and a resume with a
        # re-chunked spec is refused up front (the manifest's spec — chunk
        # size included — is re-validated on resume, never silently mixed).
        import pytest as _pytest

        from repro.runstore import RunStoreError, run_spec
        spec = self.parse()
        partial = run_spec(spec, runs_dir=str(tmp_path / "a"),
                           run_id="chunked", max_points=1)
        assert partial.status == "running"
        with _pytest.raises(RunStoreError, match="different spec"):
            run_spec(self.parse(chunk_size=64), runs_dir=str(tmp_path / "a"),
                     run_id="chunked", resume=True)
        resumed = run_spec(spec, runs_dir=str(tmp_path / "a"),
                           run_id="chunked", resume=True)
        assert resumed.status == "complete"
        uninterrupted = run_spec(spec, runs_dir=str(tmp_path / "b"),
                                 run_id="chunked")
        assert resumed.rows() == uninterrupted.rows()
