"""Cross-run catalog: discovery, incremental index, query API, CLI.

The acceptance spine: a query over two completed runs (one through the
service tenant layout) returns provenance-tagged rows byte-identical to
concatenating each run's own ``Run.rows()``, with zero per-shard ``.npz``
opens on vouched runs, and an incremental re-index re-reads only the runs
whose content digest actually changed.
"""

import json
import os
import shutil

import pytest

import repro.runstore as runstore_module
from repro.catalog import (
    INDEX_DIRNAME,
    PROVENANCE_COLUMNS,
    Catalog,
    CatalogError,
    discover_runs,
    export_frame,
)
from repro.cli import main
from repro.reporting import render_run_comparison
from repro.runstore import RunStore, run_spec
from repro.specs import parse_spec

SPEC_A = {
    "experiment": {"name": "cat-a", "kind": "sweep", "seed": 0,
                   "replications": 0},
    "sweep": {"lifespans": [40.0, 50.0], "setup_costs": [1.0],
              "interrupts": [1], "schedulers": ["equalizing-adaptive"]},
}
SPEC_B = {
    "experiment": {"name": "cat-b", "kind": "sweep", "seed": 1,
                   "replications": 0},
    "sweep": {"lifespans": [60.0], "setup_costs": [1.0, 2.0],
              "interrupts": [2], "schedulers": ["equalizing-adaptive"]},
}


@pytest.fixture
def roots(tmp_path):
    """One runs root holding a top-level run and a tenant-layout run."""
    root = str(tmp_path / "runs")
    run_a = run_spec(parse_spec(SPEC_A), runs_dir=root)
    run_b = run_spec(parse_spec(SPEC_B),
                     runs_dir=os.path.join(root, "alice"))
    return root, run_a, run_b


def _strip_provenance(rows):
    return [{k: v for k, v in row.items() if k not in PROVENANCE_COLUMNS}
            for row in rows]


class TestDiscovery:
    def test_finds_both_layouts_and_skips_infrastructure(self, roots,
                                                         tmp_path):
        root, run_a, run_b = roots
        os.makedirs(os.path.join(root, "_queue"))
        os.makedirs(os.path.join(root, ".cache"))
        os.makedirs(os.path.join(root, "alice", "_scratch"))
        found = discover_runs([root])
        assert [(tenant, run_id) for _, tenant, run_id, _ in found] == [
            ("alice", run_b.run_id), ("", run_a.run_id)]

    def test_missing_root_is_empty_not_an_error(self, tmp_path):
        assert discover_runs([str(tmp_path / "nope")]) == []


class TestRefresh:
    def test_initial_index_and_incremental_noop(self, roots):
        root, _, _ = roots
        stats = Catalog([root]).refresh()
        assert stats == {"indexed": 2, "unchanged": 0, "removed": 0,
                         "failed": 0, "total": 2}
        assert os.path.isfile(os.path.join(root, INDEX_DIRNAME,
                                           "index.json"))
        again = Catalog([root]).refresh()
        assert again["indexed"] == 0 and again["unchanged"] == 2

    def test_republished_run_is_reindexed_alone(self, roots):
        # Staleness: a digest change re-extracts that run and only it.
        root, run_a, _ = roots
        Catalog([root]).refresh()
        before = Catalog([root]).get(run_a.run_id).record.content_digest
        row = dict(run_a.read_point(0))
        row["guaranteed_work"] = row["guaranteed_work"] + 1.0
        run_a.write_point(0, row)          # drops the sidecar
        run_a.consolidate_columns()        # re-publish: new content digest
        stats = Catalog([root]).refresh()
        assert stats["indexed"] == 1 and stats["unchanged"] == 1
        after = Catalog([root]).get(run_a.run_id).record.content_digest
        assert after is not None and after != before

    def test_deleted_run_drops_out_without_full_rebuild(self, roots):
        root, run_a, run_b = roots
        Catalog([root]).refresh()
        shutil.rmtree(run_b.root)
        stats = Catalog([root]).refresh()
        assert stats == {"indexed": 0, "unchanged": 1, "removed": 1,
                         "failed": 0, "total": 1}
        assert [h.run_id for h in Catalog([root]).find()] == [run_a.run_id]

    def test_unreadable_run_is_skipped_not_fatal(self, roots, tmp_path):
        root, _, _ = roots
        bad = os.path.join(root, "torn-run")
        os.makedirs(bad)
        with open(os.path.join(bad, "manifest.json"), "w") as handle:
            handle.write("{not json")
        stats = Catalog([root]).refresh()
        assert stats["failed"] == 1 and stats["total"] == 2

    def test_index_run_upserts_without_touching_others(self, roots):
        root, run_a, run_b = roots
        catalog = Catalog([root])
        catalog.index_run(run_b.root, tenant="alice")
        ids = [r.run_id for r in Catalog([root]).records()]
        assert ids == [run_b.run_id]
        catalog.index_run(run_a.root)
        ids = [r.run_id for r in Catalog([root]).records()]
        assert set(ids) == {run_a.run_id, run_b.run_id}


class TestFind:
    @pytest.fixture
    def catalog(self, roots):
        root, _, _ = roots
        cat = Catalog([root])
        cat.refresh()
        return cat

    def test_filters(self, catalog, roots):
        _, run_a, run_b = roots
        assert [h.run_id for h in catalog.find(kind="sweep")] == [
            run_a.run_id, run_b.run_id]     # "" tenant sorts first
        assert [h.run_id for h in catalog.find(p=2)] == [run_b.run_id]
        assert [h.run_id for h in catalog.find(c=2.0)] == [run_b.run_id]
        assert [h.run_id for h in catalog.find(u=40.0)] == [run_a.run_id]
        assert [h.run_id for h in catalog.find(tenant="")] == [run_a.run_id]
        assert [h.run_id for h in catalog.find(name="cat-b")] == [
            run_b.run_id]
        assert catalog.find(scheduler="equalizing-adaptive",
                            status="complete") and \
            catalog.find(scheduler="geometric") == []

    def test_since(self, catalog):
        assert len(catalog.find(since="2000-01-01")) == 2
        assert catalog.find(since=2e10) == []
        with pytest.raises(CatalogError, match="since="):
            catalog.find(since="not-a-date")

    def test_unknown_filter_raises(self, catalog):
        with pytest.raises(CatalogError, match="unknown find"):
            catalog.find(flavour="strawberry")

    def test_get_disambiguates_by_tenant(self, roots, catalog):
        root, run_a, _ = roots
        assert catalog.get(run_a.run_id).tenant == ""
        with pytest.raises(CatalogError, match="no indexed run"):
            catalog.get("nope")

    def test_handles_are_lazy_and_detect_vanished_runs(self, roots,
                                                       catalog):
        _, _, run_b = roots
        handle = catalog.get(run_b.run_id)
        shutil.rmtree(run_b.root)
        with pytest.raises(CatalogError, match="vanished"):
            handle.rows()


class TestFrame:
    @pytest.fixture
    def catalog(self, roots):
        root, _, _ = roots
        cat = Catalog([root])
        cat.refresh()
        return cat

    def test_rows_byte_identical_to_per_run_union(self, roots, catalog):
        # The acceptance criterion: strip the provenance columns and the
        # frame is byte-for-byte the concatenation of each run's rows()
        # in find() order (top-level "" tenant first, then "alice").
        _, run_a, run_b = roots
        rows = catalog.frame().to_rows()
        union = run_a.rows() + run_b.rows()
        assert json.dumps(_strip_provenance(rows)) == json.dumps(union)
        assert {row["run_id"] for row in rows} == {run_a.run_id,
                                                   run_b.run_id}
        assert [row["tenant"] for row in rows] == ["", "", "alice", "alice"]
        digests = {row["run_id"]: row["spec_digest"] for row in rows}
        assert digests[run_a.run_id] != digests[run_b.run_id]

    def test_provenance_columns_come_last(self, catalog):
        frame = catalog.frame()
        assert tuple(frame.data)[-3:] == PROVENANCE_COLUMNS

    def test_zero_shard_opens_on_vouched_runs(self, roots, monkeypatch):
        # Completed runs have a valid sidecar + vouch: indexing AND
        # querying them must never open a per-point .npz shard.
        root, _, _ = roots
        reads = []
        real = runstore_module.read_row_shard
        monkeypatch.setattr(
            runstore_module, "read_row_shard",
            lambda path: (reads.append(path), real(path))[1])
        catalog = Catalog([root])
        catalog.refresh()
        frame = catalog.frame()
        assert len(frame) == 4
        assert reads == []

    def test_where_and_columns(self, roots, catalog):
        _, run_a, run_b = roots
        frame = catalog.frame(where={"max_interrupts": 2})
        assert len(frame) == 2
        assert set(frame.data["run_id"].tolist()) == {run_b.run_id}
        frame = catalog.frame(where={"lifespan": [40.0, 60.0]},
                              columns=["lifespan", "guaranteed_work"])
        assert list(frame.data) == ["lifespan", "guaranteed_work",
                                    *PROVENANCE_COLUMNS]
        assert sorted(frame.data["lifespan"].tolist()) == [40.0, 60.0,
                                                           60.0]
        assert len(catalog.frame(where={"no_such_column": 1})) == 0

    def test_find_filters_pass_through(self, roots, catalog):
        _, _, run_b = roots
        frame = catalog.frame(tenant="alice")
        assert set(frame.data["run_id"].tolist()) == {run_b.run_id}

    def test_missing_requested_column_raises(self, catalog):
        with pytest.raises(CatalogError, match="appear in no matching run"):
            catalog.frame(columns=["no_such_column"])

    def test_bad_source_uses_shared_vocabulary(self, catalog):
        with pytest.raises(ValueError, match="unknown source 'bogus'"):
            catalog.frame(source="bogus")

    def test_empty_match_yields_empty_frame(self, catalog):
        frame = catalog.frame(name="no-such-spec")
        assert len(frame) == 0 and tuple(frame.data) == PROVENANCE_COLUMNS


class TestExportAndDiff:
    @pytest.fixture
    def catalog(self, roots):
        root, _, _ = roots
        cat = Catalog([root])
        cat.refresh()
        return cat

    def test_csv_round_trip_matches_frame(self, catalog, tmp_path):
        frame = catalog.frame()
        out = tmp_path / "frame.csv"
        assert export_frame(frame, str(out)) == "csv"
        lines = out.read_text().strip().splitlines()
        assert len(lines) == len(frame) + 1
        header = lines[0].split(",")
        assert header[-3:] == list(PROVENANCE_COLUMNS)

    def test_unknown_format_raises(self, catalog, tmp_path):
        with pytest.raises(CatalogError, match="cannot infer"):
            export_frame(catalog.frame(), str(tmp_path / "frame.xyz"))
        with pytest.raises(CatalogError, match="unknown export format"):
            export_frame(catalog.frame(), str(tmp_path / "f.csv"),
                         format="xlsx")

    def test_arrow_formats_gate_on_pyarrow(self, catalog, tmp_path):
        # pyarrow is an optional dependency: with it installed the export
        # round-trips; without it the error names the missing package and
        # the CSV escape hatch.
        frame = catalog.frame()
        out = tmp_path / "frame.parquet"
        try:
            import pyarrow.parquet as pq
        except ImportError:
            with pytest.raises(CatalogError, match="pyarrow"):
                export_frame(frame, str(out))
        else:
            export_frame(frame, str(out))
            table = pq.read_table(str(out))
            assert table.num_rows == len(frame)
            assert table.column("run_id").to_pylist() == \
                frame.data["run_id"].tolist()

    def test_diff_renders_identity_spec_and_metric_sections(self, roots,
                                                            catalog):
        _, run_a, run_b = roots
        text = catalog.diff(run_a.run_id, run_b.run_id)
        assert "## Identity" in text and "## Spec differences" in text
        assert "## Shared metrics" in text
        assert "| interrupts | 1 | 2 |" in text
        same = render_run_comparison(catalog.get(run_a.run_id),
                                     catalog.get(run_a.run_id))
        assert "Identical spec summaries." in same


class TestServiceHook:
    def test_publish_upserts_into_the_catalog(self, tmp_path):
        from repro.service.runner import RunService

        runs_dir = tmp_path / "runs"
        service = RunService(str(runs_dir), poll_interval=0.02)
        service.journal.submit(SPEC_A)
        service.serve(drain=True, max_runtime=120.0)
        # No explicit `repro catalog index`: the publish hook indexed it.
        handles = Catalog([str(runs_dir)]).find(tenant="default")
        assert len(handles) == 1 and handles[0].record.status == "complete"
        assert handles[0].rows() == RunStore(
            str(runs_dir / "default")).open(handles[0].run_id).rows()

    def test_no_catalog_flag_disables_the_hook(self, tmp_path):
        from repro.service.runner import RunService

        runs_dir = tmp_path / "runs"
        service = RunService(str(runs_dir), poll_interval=0.02,
                             catalog_index=False)
        service.journal.submit(SPEC_A)
        service.serve(drain=True, max_runtime=120.0)
        assert not os.path.exists(str(runs_dir / INDEX_DIRNAME))


class TestCatalogCLI:
    def test_index_list_query_export(self, roots, tmp_path, capsys):
        root, run_a, run_b = roots
        assert main(["catalog", "--runs-dir", root, "index"]) == 0
        assert "indexed 2 run(s)" in capsys.readouterr().out

        assert main(["catalog", "--runs-dir", root, "list"]) == 0
        out = capsys.readouterr().out
        assert run_a.run_id in out and run_b.run_id in out

        assert main(["catalog", "--runs-dir", root, "query",
                     "-p", "2"]) == 0
        out = capsys.readouterr().out
        assert run_b.run_id in out and run_a.run_id not in out

        exported = tmp_path / "rows.csv"
        assert main(["catalog", "--runs-dir", root, "export",
                     str(exported)]) == 0
        lines = exported.read_text().strip().splitlines()
        assert len(lines) == 1 + len(run_a.rows()) + len(run_b.rows())

    def test_query_where_flag(self, roots, capsys):
        root, _, run_b = roots
        main(["catalog", "--runs-dir", root, "index"])
        capsys.readouterr()
        assert main(["catalog", "--runs-dir", root, "query",
                     "--where", "setup_cost=2.0"]) == 0
        out = capsys.readouterr().out
        assert run_b.run_id in out

    def test_diff_subcommand(self, roots, capsys):
        root, run_a, run_b = roots
        main(["catalog", "--runs-dir", root, "index"])
        capsys.readouterr()
        assert main(["catalog", "--runs-dir", root, "diff",
                     run_a.run_id, run_b.run_id]) == 0
        assert "# Run comparison" in capsys.readouterr().out

    def test_errors_become_clean_exits(self, roots, capsys):
        root, _, _ = roots
        with pytest.raises(SystemExit, match="error"):
            main(["catalog", "--runs-dir", root, "diff", "nope", "nada"])
        with pytest.raises(SystemExit, match="--where expects"):
            main(["catalog", "--runs-dir", root, "query",
                  "--where", "malformed"])
