"""Backend equivalence for the Monte-Carlo replication layer.

``replicate_point`` / ``replicate_scenario`` / ``run_sweep`` accept
``backend="event"`` (reference) and ``backend="batch"`` (vectorized).  Both
seed and consult the adversaries identically, so for the same seeds the
aggregates must agree to float summation order; 1e-9 is pinned here with
lots of margin (observed differences are ~1e-15 relative).
"""

import pytest

from repro.experiments import SweepGrid, SweepPoint, replicate_point, replicate_scenario, run_sweep
from repro.experiments.montecarlo import BACKENDS
from repro.workloads import flaky_owners, laptop_evening

TOL = 1e-9


def rows_close(a, b, tol=TOL):
    assert set(a) == set(b)
    for key in a:
        va, vb = a[key], b[key]
        if isinstance(va, str):
            assert va == vb
        else:
            assert abs(va - vb) <= tol * max(1.0, abs(va)), (key, va, vb)


class TestReplicatePointBackends:
    @pytest.mark.parametrize("scheduler", ["equalizing-adaptive",
                                           "rosenberg-adaptive"])
    @pytest.mark.parametrize("adversary", ["poisson-owner", "uniform-owner",
                                           "random-period", "never",
                                           "last-period"])
    def test_batch_matches_event(self, scheduler, adversary):
        point = SweepPoint(index=2, lifespan=400.0, setup_cost=1.0,
                           max_interrupts=2, scheduler=scheduler,
                           adversary=adversary)
        event_row = replicate_point(point, 40, base_seed=9, backend="event")
        batch_row = replicate_point(point, 40, base_seed=9, backend="batch")
        rows_close(event_row, batch_row)

    def test_nonadaptive_points_batch_matches_event(self):
        # Non-adaptive points route through the vectorized tail-reuse batch
        # pass; seeds and adversary consultations are identical, so the
        # aggregates agree to float summation order.
        point = SweepPoint(index=0, lifespan=300.0, setup_cost=1.0,
                           max_interrupts=2,
                           scheduler="rosenberg-nonadaptive",
                           adversary="poisson-owner")
        event_row = replicate_point(point, 25, base_seed=4, backend="event")
        batch_row = replicate_point(point, 25, base_seed=4, backend="batch")
        rows_close(event_row, batch_row)

    def test_batch_is_deterministic(self):
        point = SweepPoint(index=5, lifespan=500.0, setup_cost=2.0,
                           max_interrupts=3, scheduler="equalizing-adaptive",
                           adversary="poisson-owner")
        first = replicate_point(point, 30, base_seed=1, backend="batch")
        second = replicate_point(point, 30, base_seed=1, backend="batch")
        assert first == second
        shifted = replicate_point(point, 30, base_seed=2, backend="batch")
        assert first["work_mean"] != shifted["work_mean"]

    def test_unknown_backend_rejected(self):
        point = SweepPoint(index=0, lifespan=100.0, setup_cost=1.0,
                           max_interrupts=1, scheduler="equalizing-adaptive",
                           adversary="poisson-owner")
        with pytest.raises(ValueError):
            replicate_point(point, 5, backend="vector")
        assert BACKENDS == ("event", "batch")


class TestReplicateScenarioBackends:
    def test_batch_matches_event_exactly(self):
        # Scenario replication is trace-identical under both backends, and
        # the batch simulator is bit-exact, so the whole row must be equal.
        for family in (laptop_evening, flaky_owners):
            event_row = replicate_scenario(family, 6, base_seed=3,
                                           backend="event")
            batch_row = replicate_scenario(family, 6, base_seed=3,
                                           backend="batch")
            assert event_row == batch_row

    def test_family_kwargs_forwarded(self):
        event_row = replicate_scenario(flaky_owners, 4, base_seed=2,
                                       num_machines=2, lifespan=120.0,
                                       backend="batch")
        again = replicate_scenario(flaky_owners, 4, base_seed=2,
                                   num_machines=2, lifespan=120.0,
                                   backend="event")
        assert event_row == again

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            replicate_scenario(laptop_evening, 2, backend="nope")


class TestSweepBackends:
    GRID = SweepGrid(lifespans=(150.0, 300.0), interrupt_budgets=(1, 2),
                     schedulers=("equalizing-adaptive",),
                     adversaries=("poisson-owner",))

    def test_sweep_batch_matches_event(self):
        event_rows = run_sweep(self.GRID, jobs=1, replications=20, seed=5,
                               backend="event")
        batch_rows = run_sweep(self.GRID, jobs=1, replications=20, seed=5,
                               backend="batch")
        assert len(event_rows) == len(batch_rows)
        for event_row, batch_row in zip(event_rows, batch_rows):
            rows_close(event_row, batch_row)

    def test_sweep_batch_parallel_equals_serial(self):
        serial = run_sweep(self.GRID, jobs=1, replications=10, seed=3,
                           backend="batch")
        fanned = run_sweep(self.GRID, jobs=3, replications=10, seed=3,
                           backend="batch")
        assert serial == fanned

    def test_sweep_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            run_sweep(self.GRID, replications=2, backend="bogus")
