"""Variance reduction: paired sampling, CI columns, and their invariants.

Pins the variance-reduction layer's contracts end to end: the antithetic
pairing is a bijection on absolute replication indices (member 0 bitwise
reproduces plain sampling), the distribution reflections are involutions,
CI columns are bit-identical under any chunking and between the exact and
streaming aggregation paths, ``variance="none"`` rows stay byte-identical
to the pre-variance pipeline, the spec/digest layer treats ``variance``
as part of a run's identity (unlike ``chunk_size``), NaN rejection names
the absolute replication index, and a SIGKILLed antithetic run resumes to
a byte-identical report.
"""

import math
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sampling import AntitheticRng, PairedSeed, reseed, spawn_rng
from repro.experiments import SweepPoint, replicate_point, run_sweep
from repro.experiments.grid import SweepGrid, point_seed
from repro.experiments.montecarlo import replicate_scenario
from repro.experiments.streaming import StreamingAggregator
from repro.experiments.variance import (
    BATCH_MEANS_SIZE,
    VARIANCE_MODES,
    Z95,
    CiAccumulator,
    replication_seed,
    resolve_variance,
)
from repro.specs import SpecError, parse_spec, payload_digest, spec_to_dict
from repro.workloads import laptop_evening

POINT = SweepPoint(index=3, lifespan=400.0, setup_cost=1.0, max_interrupts=2,
                   scheduler="equalizing-adaptive", adversary="poisson-owner")
NONADAPTIVE_POINT = SweepPoint(index=1, lifespan=300.0, setup_cost=1.0,
                               max_interrupts=2,
                               scheduler="rosenberg-nonadaptive",
                               adversary="uniform-owner")

seeds = st.integers(min_value=0, max_value=2**31 - 1)


class TestPairedSeed:
    def test_member_validation(self):
        with pytest.raises(ValueError, match="member"):
            PairedSeed(7, 2)

    @given(seed=seeds, member=st.integers(0, 1), offset=st.integers(0, 10**6))
    def test_arithmetic_preserves_tag(self, seed, member, offset):
        tagged = PairedSeed(seed, member)
        for derived in (tagged + offset, offset + tagged, tagged - offset,
                        tagged * 3, 3 * tagged):
            assert isinstance(derived, PairedSeed)
            assert derived.member == member
        assert int(tagged + offset) == seed + offset

    @given(seed=seeds, member=st.integers(0, 1))
    def test_default_rng_drops_the_tag(self, seed, member):
        # Structural randomness must be identical within a pair: feeding a
        # PairedSeed to default_rng yields the untagged seed's stream.
        tagged = np.random.default_rng(PairedSeed(seed, member))
        plain = np.random.default_rng(seed)
        assert tagged.random(4).tolist() == plain.random(4).tolist()

    def test_reseed_reattaches_tag(self):
        assert reseed(PairedSeed(5, 1), 42) == 42
        assert reseed(PairedSeed(5, 1), 42).member == 1
        assert reseed(7, 42) == 42
        assert not isinstance(reseed(7, 42), PairedSeed)


class TestAntitheticRng:
    @given(seed=seeds)
    def test_member_zero_is_bitwise_plain(self, seed):
        rng = AntitheticRng(seed, 0)
        ref = np.random.default_rng(seed)
        assert float(rng.random()) == float(ref.random())
        assert rng.uniform(2.0, 5.0, size=3).tolist() \
            == ref.uniform(2.0, 5.0, size=3).tolist()
        assert rng.exponential(2.5, size=3).tolist() \
            == ref.exponential(2.5, size=3).tolist()
        assert rng.integers(0, 10, size=3).tolist() \
            == ref.integers(0, 10, size=3).tolist()
        assert float(rng.normal(1.0, 2.0)) == float(ref.normal(1.0, 2.0))

    @given(seed=seeds)
    def test_reflections_pair_exactly(self, seed):
        a = AntitheticRng(seed, 0)
        b = AntitheticRng(seed, 1)
        # Uniform: u0 + u1 == 1 exactly (pure subtraction).
        assert float(a.random()) + float(b.random()) == 1.0
        # uniform(low, high): x0 + x1 == low + high.
        x0, x1 = float(a.uniform(2.0, 5.0)), float(b.uniform(2.0, 5.0))
        assert x0 + x1 == pytest.approx(7.0, rel=1e-12)
        # integers over [lo, hi): k0 + k1 == lo + hi - 1.
        k0 = a.integers(3, 9, size=8)
        k1 = b.integers(3, 9, size=8)
        assert (k0 + k1 == 3 + 9 - 1).all()
        assert ((3 <= k1) & (k1 < 9)).all()
        # normal: x0 + x1 == 2 * loc.
        n0, n1 = float(a.normal(4.0, 2.0)), float(b.normal(4.0, 2.0))
        assert n0 + n1 == pytest.approx(8.0, rel=1e-12)
        # exponential: survival probabilities are complementary.
        e0, e1 = float(a.exponential(2.0)), float(b.exponential(2.0))
        assert math.exp(-e0 / 2.0) + math.exp(-e1 / 2.0) \
            == pytest.approx(1.0, abs=1e-12)

    @given(seed=seeds)
    def test_exponential_reflection_is_an_involution(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.exponential(3.0, size=16)
        u = np.maximum(-np.expm1(-x / 3.0), np.finfo(float).tiny)
        reflected = -3.0 * np.log(u)
        back = -3.0 * np.log(np.maximum(-np.expm1(-reflected / 3.0),
                                        np.finfo(float).tiny))
        assert np.allclose(back, x, rtol=1e-9)

    @given(seed=seeds)
    def test_members_consume_identical_stream_positions(self, seed):
        # Interleave distributions; the pairing must hold draw by draw.
        a = AntitheticRng(seed, 0)
        b = AntitheticRng(seed, 1)
        assert float(a.random()) + float(b.random()) == 1.0
        a.exponential(1.0, size=5), b.exponential(1.0, size=5)
        assert float(a.random()) + float(b.random()) == 1.0


class TestReplicationSeed:
    @given(base=seeds, key=st.integers(0, 100), r=st.integers(0, 10_000))
    def test_pairing_is_a_bijection_on_absolute_indices(self, base, key, r):
        seed = replication_seed(base, key, r, "antithetic")
        partner = replication_seed(base, key, r ^ 1, "antithetic")
        assert isinstance(seed, PairedSeed)
        assert int(seed) == int(partner)          # shared pair seed
        assert seed.member == r % 2
        assert partner.member == (r ^ 1) % 2
        assert seed.member != partner.member      # the two members differ
        # The shared seed is the absolute-index seed of the even member.
        assert int(seed) == point_seed(base, key, r - (r % 2))

    @given(base=seeds, key=st.integers(0, 100), r=st.integers(0, 10_000))
    def test_none_and_stratified_use_the_historical_seed(self, base, key, r):
        for mode in ("none", "stratified"):
            seed = replication_seed(base, key, r, mode)
            assert seed == point_seed(base, key, r)
            assert not isinstance(seed, PairedSeed)

    @given(base=seeds, key=st.integers(0, 100), k=st.integers(0, 5_000))
    def test_member_zero_reproduces_plain_sampling(self, base, key, k):
        even = 2 * k
        paired = replication_seed(base, key, even, "antithetic")
        plain = replication_seed(base, key, even, "none")
        assert spawn_rng(paired).random(3).tolist() \
            == spawn_rng(plain).random(3).tolist()

    def test_resolve_variance(self):
        assert VARIANCE_MODES == ("none", "antithetic", "stratified")
        assert resolve_variance("antithetic", 10) == "antithetic"
        with pytest.raises(ValueError, match="unknown variance"):
            resolve_variance("qmc")
        with pytest.raises(ValueError, match="even"):
            resolve_variance("antithetic", 9)
        with pytest.raises(ValueError, match="even"):
            replicate_point(POINT, 5, variance="antithetic")


class TestCiAccumulator:
    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=200))
    def test_plain_sem_matches_numpy(self, values):
        acc = CiAccumulator("none")
        acc.extend(values)
        cols = acc.columns("x")
        expected = np.std(values, ddof=1) / math.sqrt(len(values))
        # Welford (streaming) and numpy's two-pass std agree to ~1e-9
        # relative in general, but near-identical large values (mean ~1e6,
        # spread ~1 ulp) lose up to half the mantissa to cancellation in
        # BOTH algorithms — scale the absolute floor by the mean's ulp.
        slack = 1e-12 + math.ulp(abs(float(np.mean(values)))) * len(values)
        assert cols["x_sem"] == pytest.approx(expected, rel=1e-6, abs=slack)
        assert cols["x_ci_lo"] == pytest.approx(
            np.mean(values) - Z95 * cols["x_sem"], rel=1e-9, abs=1e-9)
        assert cols["x_ci_hi"] == pytest.approx(
            np.mean(values) + Z95 * cols["x_sem"], rel=1e-9, abs=1e-9)

    @given(st.lists(st.floats(-1e6, 1e6), min_size=4, max_size=200)
           .filter(lambda v: len(v) % 2 == 0))
    def test_antithetic_sem_is_the_pair_means_estimator(self, values):
        acc = CiAccumulator("antithetic")
        acc.extend(values)
        pair_means = np.asarray(values).reshape(-1, 2).mean(axis=1)
        expected = np.std(pair_means, ddof=1) / math.sqrt(len(pair_means))
        assert acc.columns("x")["x_sem"] \
            == pytest.approx(expected, rel=1e-9, abs=1e-12)

    def test_stratified_sem_matches_cochran_reference(self):
        rng = np.random.default_rng(5)
        values = rng.normal(10.0, 3.0, size=120)
        strata = rng.integers(0, 4, size=120)
        acc = CiAccumulator("stratified")
        acc.extend(values, strata)
        n = len(values)
        pooled = np.var(values, ddof=1)
        within = correction = 0.0
        for label in np.unique(strata):
            cell = values[strata == label]
            weight = len(cell) / n
            var = np.var(cell, ddof=1) if len(cell) > 1 else pooled
            within += weight * var
            correction += (1.0 - weight) * var
        expected = math.sqrt(within / n + correction / n ** 2)
        assert acc.columns("x")["x_sem"] \
            == pytest.approx(expected, rel=1e-9)

    def test_batch_means_falls_back_below_two_batches(self):
        acc = CiAccumulator("none")
        acc.extend(range(BATCH_MEANS_SIZE))  # exactly one full batch
        cols = acc.columns("x")
        assert cols["x_sem_bm"] == cols["x_sem"]

    def test_batch_means_includes_the_partial_batch(self):
        values = list(np.random.default_rng(7).normal(size=3 * BATCH_MEANS_SIZE + 17))
        acc = CiAccumulator("none")
        acc.extend(values)
        batches = [values[i:i + BATCH_MEANS_SIZE]
                   for i in range(0, len(values), BATCH_MEANS_SIZE)]
        means = [np.mean(b) for b in batches]
        expected = np.std(means, ddof=1) / math.sqrt(len(means))
        assert acc.columns("x")["x_sem_bm"] \
            == pytest.approx(expected, rel=1e-9)

    @given(st.data())
    @settings(max_examples=25)
    def test_chunking_never_changes_ci_columns(self, data):
        values = data.draw(st.lists(st.floats(-1e3, 1e3),
                                    min_size=10, max_size=80))
        strata = data.draw(st.lists(st.integers(0, 5),
                                    min_size=len(values),
                                    max_size=len(values)))
        chunk = data.draw(st.integers(1, len(values)))
        for mode in VARIANCE_MODES:
            one_shot = CiAccumulator(mode)
            one_shot.extend(values, strata)
            chunked = CiAccumulator(mode)
            for start in range(0, len(values), chunk):
                chunked.extend(values[start:start + chunk],
                               strata[start:start + chunk])
            assert one_shot.columns("x") == chunked.columns("x")


class TestPipelineInvariants:
    @pytest.mark.parametrize("variance", ["antithetic", "stratified"])
    def test_ci_columns_bit_identical_across_chunkings(self, variance):
        exact = replicate_point(POINT, 32, base_seed=9, backend="batch",
                                aggregation="exact", variance=variance)
        for chunk in (7, 16):
            streamed = replicate_point(POINT, 32, base_seed=9,
                                       backend="batch",
                                       aggregation="streaming",
                                       chunk_size=chunk, variance=variance)
            for key, value in exact.items():
                if key.endswith(("_sem", "_ci_lo", "_ci_hi", "_sem_bm",
                                 "_ci_lo_bm", "_ci_hi_bm")):
                    assert streamed[key] == value, (variance, chunk, key)

    def test_none_mode_rows_are_byte_identical_to_the_legacy_call(self):
        legacy = replicate_point(POINT, 12, base_seed=3, backend="batch")
        explicit = replicate_point(POINT, 12, base_seed=3, backend="batch",
                                   variance="none")
        assert explicit == legacy
        assert "variance" not in explicit
        assert not any(k.endswith("_sem") for k in explicit)

    def test_stratified_keeps_every_base_column_bitwise(self):
        none = replicate_point(NONADAPTIVE_POINT, 20, base_seed=4,
                               backend="batch")
        stratified = replicate_point(NONADAPTIVE_POINT, 20, base_seed=4,
                                     backend="batch", variance="stratified")
        for key, value in none.items():
            assert stratified[key] == value, key
        assert stratified["variance"] == "stratified"
        assert "work_sem" in stratified

    @pytest.mark.parametrize("backend", ["event", "batch"])
    def test_scenario_backends_agree_under_antithetic(self, backend):
        row = replicate_scenario(laptop_evening, 8, base_seed=2,
                                 scheduler=None, backend=backend,
                                 variance="antithetic")
        assert row["variance"] == "antithetic"
        assert row["work_ci_lo"] <= row["work_mean"] <= row["work_ci_hi"]

    def test_event_and_batch_agree_bitwise_on_paired_traces(self):
        event = replicate_scenario(laptop_evening, 8, base_seed=2,
                                   scheduler=None, backend="event",
                                   variance="antithetic")
        batch = replicate_scenario(laptop_evening, 8, base_seed=2,
                                   scheduler=None, backend="batch",
                                   variance="antithetic")
        for key in event:
            if isinstance(event[key], str):
                assert event[key] == batch[key], key
            else:
                assert float(event[key]) == pytest.approx(
                    float(batch[key]), rel=1e-9, abs=1e-9), key

    def test_run_sweep_validates_variance_up_front(self):
        grid = SweepGrid(lifespans=(50.0,), setup_costs=(1.0,),
                         interrupt_budgets=(1,),
                         schedulers=("equalizing-adaptive",),
                         adversaries=("poisson-owner",))
        with pytest.raises(ValueError, match="even"):
            run_sweep(grid, replications=5, variance="antithetic")
        with pytest.raises(ValueError, match="unknown variance"):
            run_sweep(grid, replications=4, variance="qmc")


class TestNaNDiagnostics:
    def test_streaming_nan_names_the_absolute_index(self):
        agg = StreamingAggregator("work")
        agg.extend([1.0, 2.0, 3.0])
        with pytest.raises(ValueError,
                           match=r"absolute replication index 4"):
            agg.extend([4.0, float("nan"), 5.0])

    def test_scalar_update_nan_names_the_absolute_index(self):
        agg = StreamingAggregator("work")
        agg.extend([1.0, 2.0])
        with pytest.raises(ValueError,
                           match=r"absolute replication index 2"):
            agg.update(float("nan"))

    def test_chunk_context_wraps_streaming_errors(self):
        from repro.experiments.montecarlo import _chunk_context

        wrapped = _chunk_context(ValueError("boom"), 3, 96, 128)
        assert "chunk 3" in str(wrapped)
        assert "[96, 128)" in str(wrapped)


class TestSpecPlumbing:
    def spec_data(self, **experiment):
        data = {
            "experiment": dict({"name": "v", "kind": "scenario", "seed": 1,
                                "replications": 8, "backend": "batch"},
                               **experiment),
            "scenario": {"family": "laptop",
                         "schedulers": ["equalizing-adaptive",
                                        "rosenberg-adaptive"]},
        }
        return data

    def test_variance_defaults_to_none_and_is_omitted(self):
        spec = parse_spec(self.spec_data())
        assert spec.variance == "none"
        assert "variance" not in spec_to_dict(spec)["experiment"]

    def test_non_default_variance_round_trips(self):
        spec = parse_spec(self.spec_data(variance="antithetic"))
        assert spec.variance == "antithetic"
        out = spec_to_dict(spec)
        assert out["experiment"]["variance"] == "antithetic"
        assert parse_spec(out) == spec

    def test_unknown_variance_rejected(self):
        with pytest.raises(SpecError, match="variance"):
            parse_spec(self.spec_data(variance="qmc"))

    def test_antithetic_odd_replications_rejected(self):
        with pytest.raises(SpecError, match="even"):
            parse_spec(self.spec_data(variance="antithetic", replications=7))

    def test_variance_is_part_of_the_point_identity(self):
        from repro.specs import expand_payloads

        digests = {}
        for mode in VARIANCE_MODES:
            spec = parse_spec(self.spec_data(variance=mode))
            digests[mode] = payload_digest(expand_payloads(spec)[0])
        assert len(set(digests.values())) == 3

    def test_chunk_size_still_excluded_from_the_identity(self):
        from repro.specs import expand_payloads

        base = parse_spec(self.spec_data(variance="antithetic"))
        chunked = parse_spec(self.spec_data(variance="antithetic",
                                            chunk_size=5))
        assert payload_digest(expand_payloads(base)[0]) \
            == payload_digest(expand_payloads(chunked)[0])


class TestKillResumeAntithetic:
    """SIGKILL a real antithetic run mid-sweep; the resume must be exact."""

    SPEC_TOML = """\
[experiment]
name = "kill-variance"
kind = "scenario"
seed = 0
replications = 30
backend = "event"
variance = "antithetic"

[scenario]
family = "laptop"
schedulers = ["equalizing-adaptive", "rosenberg-adaptive", "fixed-period", "single-period"]
"""

    def test_sigkill_mid_antithetic_run_then_resume_matches(self, tmp_path):
        from repro.reporting import render_run_report
        from repro.runstore import Run, resume_run, run_spec
        from repro.specs import load_spec

        spec_path = tmp_path / "kill.toml"
        spec_path.write_text(self.SPEC_TOML)
        runs_dir = tmp_path / "runs"
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep \
            + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "run", str(spec_path),
             "--runs-dir", str(runs_dir), "--run-id", "victim"],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        try:
            points_dir = runs_dir / "victim" / "points"
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline and proc.poll() is None:
                if points_dir.is_dir() and any(points_dir.glob("point-*.npz")):
                    break
                time.sleep(0.02)
            if proc.poll() is None:
                proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=60)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup on failure
                proc.kill()
                proc.wait()

        resumed = resume_run("victim", runs_dir=runs_dir)
        assert resumed.status == "complete"
        assert resumed.completed_points() == set(range(4))
        rows = resumed.rows()
        assert all(row["variance"] == "antithetic" for row in rows)
        assert all("work_sem" in row for row in rows)

        # Byte-identical to an uninterrupted run with the same id.
        reference = run_spec(load_spec(spec_path), runs_dir=tmp_path / "ref",
                             run_id="victim")
        assert render_run_report(resumed) == render_run_report(reference)
        assert Run(str(runs_dir / "victim")).rows() == reference.rows()
