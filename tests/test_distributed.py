"""Tests for the distributed work-stealing executor (:mod:`repro.distributed`).

The headline property mirrors the run-store's: a sweep computed by a
coordinator + N worker processes over loopback TCP publishes a run
directory **byte-identical** (manifest, every shard, ``columns.npz``) to
the same spec run with ``--jobs N`` on one machine — including when a
worker is SIGKILLed mid-point.  The lease-protocol edge cases (duplicate
completion, expiry during a long point, spec-digest mismatch) are pinned
against a raw protocol client so the coordinator's replies, not just the
bundled worker's behaviour, are under test.
"""

import hashlib
import json
import multiprocessing
import os
import socket
import time
import urllib.request

import pytest

from repro.distributed import (
    Coordinator,
    PointLedger,
    ProtocolError,
    WorkerClient,
    run_spec_distributed,
)
from repro.distributed.executor import _worker_entry
from repro.distributed.protocol import (
    PROTOCOL_VERSION,
    Connection,
    connect,
    recv_frame,
    resolve_bind,
    send_frame,
)
from repro.runstore import RunStore, row_to_shard_bytes, run_spec
from repro.specs import (
    default_run_id,
    evaluate_payload,
    expand_payload_at,
    parse_spec,
    spec_digest,
    spec_to_dict,
)

# 64 analytic points (4 lifespans x 2 costs x 2 budgets x 4 schedulers),
# DP optimum on — 16 distinct (L, c, p) table keys exercised cluster-wide.
SWEEP_64_SPEC = {
    "experiment": {"name": "dist-64", "kind": "sweep", "seed": 0,
                   "replications": 0},
    "sweep": {"lifespans": [60.0, 80.0, 100.0, 120.0],
              "setup_costs": [1.0, 2.0], "interrupts": [1, 2],
              "schedulers": ["equalizing-adaptive", "rosenberg-nonadaptive",
                             "fixed-period", "single-period"],
              "optimal": True},
}

# Two instant analytic points — the raw-protocol fixtures' workload.
TINY_SPEC = {
    "experiment": {"name": "dist-tiny", "kind": "sweep", "seed": 0,
                   "replications": 0},
    "sweep": {"lifespans": [40.0, 50.0], "setup_costs": [1.0],
              "interrupts": [1], "schedulers": ["equalizing-adaptive"]},
}

# Four Monte-Carlo points for the worker-death test (the point delay
# hook stretches each one so a kill reliably lands mid-point).
MC_SPEC = {
    "experiment": {"name": "dist-mc", "kind": "sweep", "seed": 3,
                   "replications": 4, "backend": "batch"},
    "sweep": {"lifespans": [80.0, 120.0], "setup_costs": [1.0],
              "interrupts": [1],
              "schedulers": ["equalizing-adaptive", "single-period"],
              "adversaries": ["poisson-owner"]},
}


def run_tree(run):
    """``{relpath: sha256}`` of a run directory, minus the advisory vouch.

    ``columns.vouch.json`` records local ``(size, mtime_ns)`` stat
    signatures — machine-local by construction, excluded from the run's
    content digest, and therefore from byte-identity too.
    """
    out = {}
    for dirpath, _dirs, files in os.walk(run.root):
        for name in files:
            if name == "columns.vouch.json":
                continue
            path = os.path.join(dirpath, name)
            with open(path, "rb") as handle:
                digest = hashlib.sha256(handle.read()).hexdigest()
            out[os.path.relpath(path, run.root)] = digest
    return out


def handshake(coordinator, *, worker_id="raw", digest=None,
              protocol=PROTOCOL_VERSION):
    """Raw client: connect + hello; returns (connection, welcome-or-error)."""
    host, port = coordinator.address
    conn = connect(host, port, timeout=30.0)
    hello = {"type": "hello", "protocol": protocol, "worker_id": worker_id}
    if digest is not None:
        hello["spec_digest"] = digest
    reply, _ = conn.request(hello)
    return conn, reply


def shard_bytes_for(spec, index):
    row = evaluate_payload(expand_payload_at(spec, index))
    blob = row_to_shard_bytes(row)
    return blob, hashlib.sha256(blob).hexdigest()


def submit_result(conn, index, lease_id, blob, digest, worker_id="raw"):
    return conn.request({"type": "result", "worker_id": worker_id,
                         "index": index, "lease_id": lease_id,
                         "sha256": digest}, blob)[0]


@pytest.fixture
def tiny_coordinator(tmp_path):
    coordinator = Coordinator(parse_spec(TINY_SPEC),
                              runs_dir=tmp_path / "runs", lease_ttl=30.0)
    coordinator.start()
    yield coordinator
    coordinator.stop()


class TestProtocol:
    def test_frame_round_trip_with_blob(self):
        left, right = socket.socketpair()
        try:
            send_frame(left, {"type": "result", "index": 7}, b"\x00" * 1024)
            header, blob = recv_frame(right)
            assert header["type"] == "result"
            assert header["index"] == 7
            assert header["blob_len"] == 1024
            assert blob == b"\x00" * 1024
        finally:
            left.close()
            right.close()

    def test_garbage_length_prefix_rejected(self):
        left, right = socket.socketpair()
        try:
            left.sendall(b"\xff\xff\xff\xff" + b"x" * 16)
            with pytest.raises(ProtocolError) as excinfo:
                recv_frame(right)
            assert "bound" in str(excinfo.value)
        finally:
            left.close()
            right.close()

    def test_truncated_frame_is_an_error_not_a_hang(self):
        left, right = socket.socketpair()
        try:
            send_frame(left, {"type": "x"}, b"one-intact-frame")
            left.close()
            header, blob = recv_frame(right)  # the intact frame is fine
            assert blob == b"one-intact-frame"
            with pytest.raises(ProtocolError):
                recv_frame(right)  # EOF mid-frame surfaces, never hangs
        finally:
            right.close()

    def test_resolve_bind(self):
        assert resolve_bind("127.0.0.1:9000") == ("127.0.0.1", 9000)
        assert resolve_bind("host.example:0") == ("host.example", 0)
        with pytest.raises(ProtocolError):
            resolve_bind("no-port")
        with pytest.raises(ProtocolError):
            resolve_bind("host:not-a-number")


class TestPointLedger:
    def test_grants_lowest_pending_then_wait_then_done(self):
        ledger = PointLedger([0, 1], ttl=30.0, total=2)
        first = ledger.lease("w")
        second = ledger.lease("w")
        assert (first.index, second.index) == (0, 1)
        assert ledger.lease("w") == "wait"
        ledger.complete(0)
        ledger.complete(1)
        assert ledger.lease("w") == "done"

    def test_expired_lease_returns_to_pending(self):
        ledger = PointLedger([0], ttl=0.05, total=1)
        first = ledger.lease("w1")
        time.sleep(0.1)
        second = ledger.lease("w2")
        assert second.index == first.index == 0
        assert second.lease_id != first.lease_id
        assert ledger.expired == 1

    def test_heartbeat_renews_and_reports_lost(self):
        ledger = PointLedger([0, 1], ttl=0.2, total=2)
        keep = ledger.lease("w")
        lose = ledger.lease("w")
        deadline = time.monotonic() + 0.5
        while time.monotonic() < deadline:
            renewed, _lost = ledger.renew("w", [keep.lease_id])
            assert keep.lease_id in renewed
            time.sleep(0.05)
        renewed, lost = ledger.renew("w", [keep.lease_id, lose.lease_id])
        assert renewed == [keep.lease_id]
        assert lost == [lose.lease_id]  # expired while never renewed
        assert ledger.counts().pending == 1  # the lost point is pending again

    def test_release_worker_returns_only_its_leases(self):
        ledger = PointLedger([0, 1, 2], ttl=30.0, total=3)
        ledger.lease("dead")
        survivor = ledger.lease("alive")
        ledger.lease("dead")
        assert ledger.release_worker("dead") == 2
        counts = ledger.counts()
        assert (counts.pending, counts.leased) == (2, 1)
        renewed, _ = ledger.renew("alive", [survivor.lease_id])
        assert renewed == [survivor.lease_id]

    def test_complete_is_idempotent(self):
        ledger = PointLedger([0], ttl=30.0, total=1)
        ledger.lease("w")
        assert ledger.complete(0) is True
        assert ledger.complete(0) is False
        assert ledger.all_done()


class TestByteIdentity:
    def test_cluster_of_two_matches_jobs_two(self, tmp_path):
        """The acceptance bar: 64 points, 2 loopback workers, identical
        manifest + shards + columns.npz, exactly one DP solve per key."""
        spec = parse_spec(SWEEP_64_SPEC)
        metrics = {}
        cluster = run_spec_distributed(spec, runs_dir=tmp_path / "cluster",
                                       workers=2, lease_ttl=30.0,
                                       timeout=600.0, metrics_out=metrics)
        local = run_spec(spec, runs_dir=tmp_path / "local", jobs=2)
        assert cluster.status == "complete"
        assert run_tree(cluster) == run_tree(local)
        assert metrics["points"]["done"] == 64
        assert len(run_tree(cluster)) == 66  # manifest + 64 shards + sidecar
        # 4 lifespans x 2 costs x 2 budgets = 16 distinct table keys; the
        # cluster solved each exactly once no matter how workers raced.
        assert metrics["table_service"]["dp_solves"] == 16
        assert metrics["shards"]["duplicates_rejected"] == 0
        assert metrics["workers"]["seen"] == 2

    def test_cluster_resume_completes_partial_run(self, tmp_path):
        spec = parse_spec(TINY_SPEC)
        seeded = run_spec(spec, runs_dir=tmp_path / "runs", max_points=1)
        assert seeded.status == "running"
        resumed = run_spec_distributed(spec, runs_dir=tmp_path / "runs",
                                       workers=1, resume=True, timeout=120.0)
        assert resumed.status == "complete"
        reference = run_spec(spec, runs_dir=tmp_path / "reference")
        assert run_tree(resumed) == run_tree(reference)


class TestWorkerDeath:
    def test_sigkill_mid_point_converges_byte_identically(self, tmp_path,
                                                          monkeypatch):
        monkeypatch.setenv("REPRO_TEST_POINT_DELAY", "0.25")
        spec = parse_spec(MC_SPEC)
        coordinator = Coordinator(spec, runs_dir=tmp_path / "cluster",
                                  lease_ttl=30.0)
        coordinator.start()
        host, port = coordinator.address
        context = multiprocessing.get_context("spawn")
        workers = [context.Process(target=_worker_entry,
                                   args=(host, port, spec_to_dict(spec),
                                         f"w{rank}", 1, None), daemon=True)
                   for rank in range(2)]
        try:
            for worker in workers:
                worker.start()
            deadline = time.monotonic() + 120.0
            while coordinator.ledger.counts().done < 1:
                assert time.monotonic() < deadline, "no point ever completed"
                time.sleep(0.02)
            workers[0].kill()  # SIGKILL mid-sweep, likely mid-point
            assert coordinator.wait(timeout=120.0), (
                f"cluster never converged: {coordinator.ledger.counts()}")
        finally:
            coordinator.stop()
            for worker in workers:
                if worker.is_alive():
                    worker.terminate()
                worker.join(timeout=10.0)
        monkeypatch.delenv("REPRO_TEST_POINT_DELAY")
        assert coordinator.run.status == "complete"
        reference = run_spec(spec, runs_dir=tmp_path / "reference")
        assert run_tree(coordinator.run) == run_tree(reference)


class TestLeaseProtocolEdgeCases:
    def test_duplicate_completion_identical_bytes_accepted(
            self, tiny_coordinator):
        spec = parse_spec(TINY_SPEC)
        conn, welcome = handshake(tiny_coordinator)
        assert welcome["type"] == "welcome"
        grant, _ = conn.request({"type": "lease", "worker_id": "raw"})
        blob, digest = shard_bytes_for(spec, grant["index"])
        first = submit_result(conn, grant["index"], grant["lease_id"],
                              blob, digest)
        assert first == {"type": "ok", "accepted": True, "duplicate": False}
        second = submit_result(conn, grant["index"], grant["lease_id"],
                               blob, digest)
        assert second == {"type": "ok", "accepted": False, "duplicate": True}
        snapshot = tiny_coordinator.metrics_snapshot()
        assert snapshot["shards"]["duplicates_identical"] == 1
        conn.close()

    def test_duplicate_completion_different_bytes_rejected(
            self, tiny_coordinator):
        spec = parse_spec(TINY_SPEC)
        conn, _ = handshake(tiny_coordinator)
        grant, _ = conn.request({"type": "lease", "worker_id": "raw"})
        index = grant["index"]
        blob, digest = shard_bytes_for(spec, index)
        submit_result(conn, index, grant["lease_id"], blob, digest)
        # A second writer shows up with *different* (but valid) bytes.
        row = evaluate_payload(expand_payload_at(spec, index))
        row["guaranteed_work"] = -1.0
        forged = row_to_shard_bytes(row)
        reply = submit_result(conn, index, grant["lease_id"], forged,
                              hashlib.sha256(forged).hexdigest())
        assert reply["type"] == "error"
        assert not reply["fatal"]
        assert "first write wins" in reply["message"]
        # The first writer's shard is untouched.
        with open(tiny_coordinator.run.shard_path(index), "rb") as handle:
            assert hashlib.sha256(handle.read()).hexdigest() == digest
        assert tiny_coordinator.metrics_snapshot()["shards"][
            "duplicates_rejected"] == 1
        conn.close()

    def test_lease_expiry_during_long_point(self, tmp_path):
        """A worker that grinds past its TTL without heartbeating loses
        the point; a second worker completes it; the slow worker's late
        identical submission lands as an accepted duplicate."""
        spec = parse_spec(TINY_SPEC)
        coordinator = Coordinator(spec, runs_dir=tmp_path / "runs",
                                  lease_ttl=0.2)
        coordinator.start()
        try:
            slow, _ = handshake(coordinator, worker_id="slow")
            grant, _ = slow.request({"type": "lease", "worker_id": "slow"})
            index = grant["index"]
            time.sleep(0.4)  # the "long point": TTL expires, no heartbeat
            fast, _ = handshake(coordinator, worker_id="fast")
            regrant, _ = fast.request({"type": "lease", "worker_id": "fast"})
            assert regrant["index"] == index  # the point was re-leased
            assert regrant["lease_id"] != grant["lease_id"]
            blob, digest = shard_bytes_for(spec, index)
            assert submit_result(fast, index, regrant["lease_id"], blob,
                                 digest, worker_id="fast")["accepted"]
            late = submit_result(slow, index, grant["lease_id"], blob,
                                 digest, worker_id="slow")
            assert late == {"type": "ok", "accepted": False,
                            "duplicate": True}
            assert coordinator.metrics_snapshot()["leases"]["expired"] >= 1
            slow.close()
            fast.close()
        finally:
            coordinator.stop()

    def test_heartbeat_keeps_a_slow_point_leased(self, tmp_path):
        spec = parse_spec(TINY_SPEC)
        coordinator = Coordinator(spec, runs_dir=tmp_path / "runs",
                                  lease_ttl=0.3)
        coordinator.start()
        try:
            conn, _ = handshake(coordinator, worker_id="steady")
            grant, _ = conn.request({"type": "lease", "worker_id": "steady"})
            for _ in range(6):  # 0.6s of work, heartbeating under the TTL
                time.sleep(0.1)
                reply, _ = conn.request({"type": "heartbeat",
                                         "worker_id": "steady",
                                         "lease_ids": [grant["lease_id"]]})
                assert reply["renewed"] == [grant["lease_id"]]
                assert reply["lost"] == []
            assert coordinator.ledger.expired == 0
            conn.close()
        finally:
            coordinator.stop()

    def test_spec_digest_mismatch_refused_with_actionable_error(
            self, tiny_coordinator):
        conn, reply = handshake(tiny_coordinator, digest="0" * 64)
        assert reply["type"] == "error"
        assert reply["fatal"]
        assert "spec digest mismatch" in reply["message"]
        assert "--spec" in reply["message"]  # tells the operator what to do
        conn.close()

    def test_worker_client_raises_on_spec_mismatch(self, tiny_coordinator):
        host, port = tiny_coordinator.address
        other = parse_spec(SWEEP_64_SPEC)
        with pytest.raises(ProtocolError) as excinfo:
            WorkerClient(host, port, spec=other).run()
        assert "spec digest mismatch" in str(excinfo.value)

    def test_matching_spec_digest_accepted(self, tiny_coordinator):
        conn, reply = handshake(tiny_coordinator,
                                digest=spec_digest(parse_spec(TINY_SPEC)))
        assert reply["type"] == "welcome"
        assert reply["num_points"] == 2
        conn.close()

    def test_protocol_version_mismatch_refused(self, tiny_coordinator):
        conn, reply = handshake(tiny_coordinator, protocol=999)
        assert reply["type"] == "error"
        assert "protocol version mismatch" in reply["message"]
        conn.close()

    def test_corrupt_stream_discarded_point_stays_pending(
            self, tiny_coordinator):
        spec = parse_spec(TINY_SPEC)
        conn, _ = handshake(tiny_coordinator)
        grant, _ = conn.request({"type": "lease", "worker_id": "raw"})
        blob, _ = shard_bytes_for(spec, grant["index"])
        reply = submit_result(conn, grant["index"], grant["lease_id"],
                              blob, "deadbeef" * 8)  # wrong digest
        assert reply["type"] == "error" and not reply["fatal"]
        assert "digest mismatch" in reply["message"]
        assert not tiny_coordinator.ledger.is_done(grant["index"])
        # Valid-looking sha over garbage bytes: rejected at parse.
        garbage = b"not an npz archive at all"
        reply = submit_result(conn, grant["index"], grant["lease_id"],
                              garbage,
                              hashlib.sha256(garbage).hexdigest())
        assert reply["type"] == "error" and not reply["fatal"]
        assert "failed validation" in reply["message"]
        assert not tiny_coordinator.ledger.is_done(grant["index"])
        conn.close()


class TestTableService:
    def test_exactly_one_solve_per_key_across_workers(self, tmp_path):
        spec = parse_spec(SWEEP_64_SPEC)
        coordinator = Coordinator(spec, runs_dir=tmp_path / "runs",
                                  lease_ttl=30.0)
        coordinator.start()
        try:
            key = [60, 1, 2, "fast"]
            conns = [handshake(coordinator, worker_id=f"w{i}")[0]
                     for i in range(2)]
            blobs = []
            for conn in conns:
                reply, blob = conn.request({"type": "table", "key": key})
                assert reply["type"] == "table"
                assert hashlib.sha256(blob).hexdigest() == reply["sha256"]
                blobs.append(blob)
            assert blobs[0] == blobs[1]
            snapshot = coordinator.metrics_snapshot()
            assert snapshot["table_service"]["requests"] == 2
            assert snapshot["table_service"]["misses"] == 1
            assert snapshot["table_service"]["hits"] == 1
            assert snapshot["table_service"]["dp_solves"] == 1
            for conn in conns:
                conn.close()
        finally:
            coordinator.stop()

    def test_malformed_table_key_is_a_soft_error(self, tiny_coordinator):
        conn, _ = handshake(tiny_coordinator)
        reply, _ = conn.request({"type": "table", "key": ["x", 1]})
        assert reply["type"] == "error" and not reply["fatal"]
        # The connection survives a soft error: a lease still works.
        grant, _ = conn.request({"type": "lease", "worker_id": "raw"})
        assert grant["type"] == "grant"
        conn.close()


class TestMetricsEndpoint:
    def test_journal_less_server_serves_metrics_only(self):
        from repro.service.http import StatusHTTPServer

        server = StatusHTTPServer(None, port=0,
                                  metrics=lambda: {"points": {"done": 3}})
        server.start()
        try:
            base = f"http://127.0.0.1:{server.port}"
            with urllib.request.urlopen(f"{base}/metrics") as resp:
                assert json.load(resp) == {"points": {"done": 3}}
            with urllib.request.urlopen(f"{base}/healthz") as resp:
                assert json.load(resp) == {"ok": True}
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"{base}/status")
            assert excinfo.value.code == 404
        finally:
            server.close()

    def test_service_metrics_merge_queue_and_distributed(self, tmp_path):
        from repro.service import Journal
        from repro.service.journal import QUEUE_DIRNAME
        from repro.service.runner import RunService

        runs_dir = tmp_path / "svc"
        Journal(str(runs_dir / QUEUE_DIRNAME)).submit(TINY_SPEC,
                                                      tenant="t")
        service = RunService(str(runs_dir), workers=1, http_port=0,
                             executor="cluster", cluster_workers=1)
        counts = service.serve(drain=True, max_runtime=300.0)
        assert counts["published"] == 1
        snapshot = service.metrics_snapshot()
        assert snapshot["executor"] == "cluster"
        assert snapshot["distributed"]["runs"] == 1
        assert snapshot["distributed"]["points_done"] == 2
        run = RunStore(str(runs_dir / "t")).open(
            default_run_id(parse_spec(TINY_SPEC)))
        assert run.status == "complete"

    def test_coordinator_metrics_shape(self, tiny_coordinator):
        snapshot = tiny_coordinator.metrics_snapshot()
        assert snapshot["points"] == {"pending": 2, "leased": 0, "done": 0,
                                      "total": 2}
        for section in ("workers", "table_service", "shards", "leases"):
            assert section in snapshot
