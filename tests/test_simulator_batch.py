"""Equivalence tests: the vectorized batch backend vs the event engine.

The batch backend's contract is *exact* agreement with the event-driven
reference on identical traces — every float metric bit for bit — plus
``~1e-15``-order agreement (pinned at 1e-9) on Monte-Carlo aggregates when
randomness is involved, because only float summation order may differ.
"""

import warnings

import numpy as np
import pytest

from repro.core.schedule import EpisodeSchedule
from repro.schedules import (
    EqualizingAdaptiveScheduler,
    FixedPeriodScheduler,
    RosenbergAdaptiveScheduler,
    SinglePeriodScheduler,
)
from repro.simulator import (
    BorrowedWorkstation,
    CycleStealingSimulation,
    simulate_batch,
    simulate_scenarios_batch,
)
from repro.core.exceptions import SimulationError
from repro.workloads import (
    SCENARIO_FAMILIES,
    bursty_office_day,
    constant_tasks,
    flaky_owners,
    heterogeneous_cluster,
    laptop_evening,
    overnight_desktops,
    pad_traces,
    poisson_interrupts,
    poisson_interrupts_batch,
    shared_lab,
)

METRIC_FIELDS = [
    "productive_time", "overhead_time", "wasted_time", "idle_time",
    "completed_work", "completed_periods", "killed_periods",
    "owner_interrupts", "episodes", "tasks_completed",
]


def assert_reports_identical(event_report, batch_report):
    """Every per-workstation metric must agree exactly (== on floats)."""
    assert set(event_report.per_workstation) == set(batch_report.per_workstation)
    for wid, event_metrics in event_report.per_workstation.items():
        batch_metrics = batch_report.per_workstation[wid]
        for field in METRIC_FIELDS:
            a = getattr(event_metrics, field)
            b = getattr(batch_metrics, field)
            assert a == b, f"{wid}.{field}: event={a!r} batch={b!r}"
    assert event_report.makespan == batch_report.makespan


def run_both(scenario_a, scenario_b, scheduler_factory_fn):
    event_report = CycleStealingSimulation(
        scenario_a.workstations, scheduler_factory_fn(),
        task_bag=scenario_a.task_bag).run()
    (batch_report,) = simulate_scenarios_batch(
        [scenario_b], scheduler_factory_fn())
    return event_report, batch_report


# ----------------------------------------------------------------------
# Bit-for-bit equivalence on the deterministic scenario families
# ----------------------------------------------------------------------
class TestScenarioEquivalence:
    """Canonical-seed scenario families are deterministic: given the same
    seed both backends see identical traces, so reports must match exactly."""

    @pytest.mark.parametrize("family", [
        laptop_evening, overnight_desktops, shared_lab,
        bursty_office_day, heterogeneous_cluster, flaky_owners,
    ])
    @pytest.mark.parametrize("make_scheduler", [
        EqualizingAdaptiveScheduler,
        RosenbergAdaptiveScheduler,
        SinglePeriodScheduler,
        lambda: FixedPeriodScheduler(period_length=17.0),
    ])
    def test_bit_for_bit(self, family, make_scheduler):
        event_report, batch_report = run_both(family(), family(), make_scheduler)
        assert_reports_identical(event_report, batch_report)

    @pytest.mark.parametrize("seed", [0, 1, 2, 99])
    def test_bit_for_bit_across_seeds(self, seed):
        event_report, batch_report = run_both(
            shared_lab(seed=seed), shared_lab(seed=seed),
            EqualizingAdaptiveScheduler)
        assert_reports_identical(event_report, batch_report)

    def test_whole_batch_at_once(self):
        scenarios_a = [laptop_evening(seed=s) for s in range(8)]
        scenarios_b = [laptop_evening(seed=s) for s in range(8)]
        scheduler = EqualizingAdaptiveScheduler()
        batch_reports = simulate_scenarios_batch(scenarios_b, scheduler)
        for scenario, batch_report in zip(scenarios_a, batch_reports):
            event_report = CycleStealingSimulation(
                scenario.workstations, scheduler,
                task_bag=scenario.task_bag).run()
            assert_reports_identical(event_report, batch_report)


# ----------------------------------------------------------------------
# Hand-built edge cases
# ----------------------------------------------------------------------
def _ws(wid="ws-0", lifespan=100.0, setup=2.0, budget=2, interrupts=(), speed=1.0):
    return BorrowedWorkstation(workstation_id=wid, lifespan=lifespan,
                               setup_cost=setup, interrupt_budget=budget,
                               owner_interrupts=interrupts, speed=speed)


class TestEdgeCases:
    def _check(self, workstations, scheduler_fn, bag_fn=lambda: None):
        # Contracts are immutable; only the task bags must be per-backend.
        event_report = CycleStealingSimulation(
            workstations, scheduler_fn(), task_bag=bag_fn()).run()
        (batch_report,) = simulate_batch([workstations], scheduler_fn(),
                                         task_bags=[bag_fn()])
        assert_reports_identical(event_report, batch_report)

    def test_no_interrupts(self):
        self._check([_ws()], EqualizingAdaptiveScheduler)

    def test_interrupt_at_time_zero(self):
        self._check([_ws(interrupts=(0.0, 41.5))], EqualizingAdaptiveScheduler)

    def test_interrupt_exactly_at_period_end(self):
        # The owner event was queued first, so it kills the period even at
        # the exact finish instant.
        scheduler = SinglePeriodScheduler()
        first = scheduler.episode_schedule(100.0, 2, 2.0)
        self._check([_ws(interrupts=(float(first.total_length) / 2,))],
                    SinglePeriodScheduler)

    def test_period_ending_exactly_at_lifespan(self):
        # Single period covers the lifespan exactly: completes at U.
        self._check([_ws(budget=0)], SinglePeriodScheduler)

    def test_owner_exceeding_budget(self):
        self._check([_ws(budget=1, interrupts=(10.0, 20.0, 30.0, 44.4))],
                    EqualizingAdaptiveScheduler)

    def test_interrupts_beyond_lifespan_are_ignored(self):
        self._check([_ws(interrupts=(50.0, 150.0, 220.0))],
                    EqualizingAdaptiveScheduler)

    def test_constant_task_bag_exact(self):
        # Exactly representable sizes: greedy packing must agree exactly.
        self._check([_ws(interrupts=(33.0,))], EqualizingAdaptiveScheduler,
                    bag_fn=lambda: constant_tasks(4096, size=0.125))

    def test_tiny_task_bag_exhausts(self):
        self._check([_ws()], EqualizingAdaptiveScheduler,
                    bag_fn=lambda: constant_tasks(3, size=0.5))

    def test_idle_interrupt_falls_back_to_event_engine(self):
        # A scheduler that under-commits leaves the machine idle before the
        # owner returns — the corner case the array passes hand back to the
        # reference engine.
        class HalfScheduler:
            def episode_schedule(self, residual, interrupts_remaining, setup_cost):
                return EpisodeSchedule.single_period(residual / 2.0)

        ws = [_ws(interrupts=(80.0,))]
        event_report = CycleStealingSimulation(ws, HalfScheduler()).run()
        (batch_report,) = simulate_batch([ws], HalfScheduler())
        assert_reports_identical(event_report, batch_report)
        # Sanity: the case really exercises idle-then-interrupt.
        assert event_report.per_workstation["ws-0"].idle_time > 0.0

    def test_multi_workstation_shared_bag_ties(self):
        # Identical contracts → identical period end times → the task bag
        # is contended at exactly tied instants; heap-order replay must
        # agree with the engine.
        ws = [_ws(wid=f"m-{i}") for i in range(4)]
        self._check(ws, EqualizingAdaptiveScheduler,
                    bag_fn=lambda: constant_tasks(1000, size=0.25))

    def test_validation_matches_engine(self):
        with pytest.raises(SimulationError):
            simulate_batch([[]], EqualizingAdaptiveScheduler())
        dup = [_ws(wid="same"), _ws(wid="same")]
        with pytest.raises(SimulationError):
            simulate_batch([dup], EqualizingAdaptiveScheduler())
        with pytest.raises(SimulationError):
            simulate_batch([[_ws()]], None)  # no scheduler at all

    def test_scheduler_factory_routes_per_workstation(self):
        ws = [_ws(wid="fast", speed=2.0), _ws(wid="slow", speed=0.5)]

        def factory(workstation):
            return (EqualizingAdaptiveScheduler() if workstation.speed > 1.0
                    else SinglePeriodScheduler())

        event_report = CycleStealingSimulation(
            ws, scheduler_factory=factory).run()
        (batch_report,) = simulate_batch([ws], scheduler_factory=factory)
        assert_reports_identical(event_report, batch_report)

    def test_bare_callable_deprecation_matches_engine(self):
        ws = [_ws()]
        with pytest.warns(DeprecationWarning):
            (batch_report,) = simulate_batch(
                [ws], lambda workstation: SinglePeriodScheduler())
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            event_report = CycleStealingSimulation(
                ws, lambda workstation: SinglePeriodScheduler()).run()
        assert_reports_identical(event_report, batch_report)

    def test_empty_batch(self):
        assert simulate_scenarios_batch([], EqualizingAdaptiveScheduler()) == []


# ----------------------------------------------------------------------
# Vectorized schedule construction
# ----------------------------------------------------------------------
class TestEpisodeScheduleBatch:
    @pytest.mark.parametrize("make_scheduler", [EqualizingAdaptiveScheduler,
                                                RosenbergAdaptiveScheduler])
    def test_bit_identical_to_scalar(self, make_scheduler):
        scheduler = make_scheduler()
        rng = np.random.default_rng(7)
        for c in (0.5, 1.0, 3.0):
            for p in (1, 2, 4):
                residuals = np.concatenate([
                    rng.uniform(2 * c + 1e-9, 12 * c, 30),
                    rng.uniform(12 * c, 5_000 * c, 60),
                ])
                batch = scheduler.episode_schedule_batch(residuals, p, c)
                for residual, from_batch in zip(residuals, batch):
                    scalar = scheduler.episode_schedule(float(residual), p, c)
                    assert np.array_equal(scalar.periods, from_batch.periods), \
                        (make_scheduler.__name__, c, p, residual)

    def test_tail_end_boundary(self):
        scheduler = EqualizingAdaptiveScheduler()
        state = scheduler._ensure_prefix(2, 1.0, 50.0)
        L = state.tail_end
        (from_batch,) = scheduler.episode_schedule_batch([L], 2, 1.0)
        scalar = scheduler.episode_schedule(L, 2, 1.0)
        assert np.array_equal(scalar.periods, from_batch.periods)

    def test_base_class_fallback_loops(self):
        scheduler = SinglePeriodScheduler()
        batch = scheduler.episode_schedule_batch([10.0, 20.0], 1, 1.0)
        assert [s.total_length for s in batch] == [10.0, 20.0]

    def test_from_validated_array_is_readonly_copy(self):
        source = np.array([1.0, 2.0, 3.0])
        schedule = EpisodeSchedule.from_validated_array(source)
        source[0] = 99.0
        assert schedule[0] == 1.0
        with pytest.raises(ValueError):
            schedule.periods[0] = 5.0


# ----------------------------------------------------------------------
# Batch trace samplers
# ----------------------------------------------------------------------
class TestBatchSamplers:
    def test_poisson_batch_bit_identical(self):
        seeds = list(range(40))
        for rate, lifespan, cap in ((0.01, 240.0, 2), (0.05, 500.0, None)):
            batch = poisson_interrupts_batch(lifespan, rate, seeds,
                                             max_interrupts=cap)
            for seed, trace in zip(seeds, batch):
                scalar = poisson_interrupts(lifespan, rate, seed=seed,
                                            max_interrupts=cap)
                assert np.array_equal(np.asarray(scalar), trace)

    def test_poisson_batch_zero_rate(self):
        traces = poisson_interrupts_batch(100.0, 0.0, [1, 2, 3])
        assert all(t.size == 0 for t in traces)

    def test_poisson_batch_rejects_bad_args(self):
        with pytest.raises(ValueError):
            poisson_interrupts_batch(0.0, 1.0, [1])
        with pytest.raises(ValueError):
            poisson_interrupts_batch(10.0, -1.0, [1])

    def test_pad_traces(self):
        padded, counts = pad_traces([[1.0, 2.0], [], [3.0]])
        assert padded.shape == (3, 2)
        assert counts.tolist() == [2, 0, 1]
        assert padded[0].tolist() == [1.0, 2.0]
        assert np.isinf(padded[1]).all()
        assert padded[2, 0] == 3.0 and np.isinf(padded[2, 1])

    def test_pad_traces_empty(self):
        padded, counts = pad_traces([])
        assert padded.shape == (0, 0) and counts.size == 0


# ----------------------------------------------------------------------
# All registered families stay equivalent (guards future families)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("family_name", sorted(SCENARIO_FAMILIES))
def test_registered_family_equivalence(family_name):
    family = SCENARIO_FAMILIES[family_name]
    event_report, batch_report = run_both(family(), family(),
                                          EqualizingAdaptiveScheduler)
    assert_reports_identical(event_report, batch_report)


class _UnderCommittingScheduler:
    """Covers only a fraction of the residual — forces idle stretches.

    Interrupts arriving after the episode's last period completes land
    while the machine is idle: exactly the corner the batch kernel now
    handles natively (it used to re-route the replication to the event
    engine).
    """

    name = "under-committing"

    def __init__(self, fraction=0.5, periods=3):
        self.fraction = fraction
        self.periods = periods

    def episode_schedule(self, residual, interrupts_remaining, setup_cost):
        return EpisodeSchedule.equal_periods(residual * self.fraction,
                                             self.periods)


class TestIdleInterruptNative:
    def test_idle_interrupt_bit_for_bit(self):
        """Interrupts landing in the idle gap must match the engine exactly."""
        # Episode 1 covers [0, 50]; the interrupt at 60 arrives while idle
        # (no kill, idle gap closed); the re-planned episode 2 spans
        # [60, 80], so the interrupt at 75 kills its period in flight.
        ws = _ws(lifespan=100.0, setup=2.0, budget=2, interrupts=(60.0, 75.0))
        event = CycleStealingSimulation([ws], _UnderCommittingScheduler()).run()
        (batch,) = simulate_batch([[ws]], _UnderCommittingScheduler())
        assert_reports_identical(event, batch)
        metrics = batch.per_workstation["ws-0"]
        assert metrics.owner_interrupts == 2
        assert metrics.killed_periods == 1      # only the in-flight kill
        assert metrics.idle_time > 0.0

    def test_mixed_busy_and_idle_interrupts(self):
        # First interrupt kills a period in flight; the second arrives idle.
        ws = _ws(lifespan=200.0, setup=1.0, budget=3,
                 interrupts=(20.0, 150.0, 199.5))
        event = CycleStealingSimulation([ws], _UnderCommittingScheduler(0.6)).run()
        (batch,) = simulate_batch([[ws]], _UnderCommittingScheduler(0.6))
        assert_reports_identical(event, batch)

    def test_idle_interrupts_with_shared_task_bag(self):
        bag_a = constant_tasks(500, size=0.5)
        bag_b = constant_tasks(500, size=0.5)
        workstations = [
            _ws("a", lifespan=120.0, setup=1.0, budget=2, interrupts=(70.0,)),
            _ws("b", lifespan=120.0, setup=1.0, budget=2,
                interrupts=(30.0, 80.0)),
        ]
        event = CycleStealingSimulation(workstations,
                                        _UnderCommittingScheduler(),
                                        task_bag=bag_a).run()
        (batch,) = simulate_batch([workstations], _UnderCommittingScheduler(),
                                  task_bags=[bag_b])
        assert_reports_identical(event, batch)

    @pytest.mark.parametrize("family_name", sorted(SCENARIO_FAMILIES.names()))
    def test_no_family_falls_back_to_the_event_engine(self, family_name):
        """fallback_reps stays empty on every registered scenario family."""
        from repro.simulator.batch import _BatchKernel

        family = SCENARIO_FAMILIES[family_name]
        scenarios = [family(seed=seed) for seed in range(5)]
        resolve = CycleStealingSimulation._resolve_scheduler(
            EqualizingAdaptiveScheduler(), None)
        kernel = _BatchKernel(resolve)
        for rep, scenario in enumerate(scenarios):
            kernel.add_replication(rep, scenario.workstations,
                                   scenario.task_bag)
        kernel.run()
        assert kernel.fallback_reps == set()

    def test_flaky_owners_never_falls_back(self):
        """The flaky-owners family (the old fallback hotspot), many seeds."""
        from repro.experiments.grid import point_seed
        from repro.simulator.batch import _BatchKernel

        scenarios = [flaky_owners(seed=point_seed(0, "flaky_owners", r))
                     for r in range(50)]
        resolve = CycleStealingSimulation._resolve_scheduler(
            EqualizingAdaptiveScheduler(), None)
        kernel = _BatchKernel(resolve)
        for rep, scenario in enumerate(scenarios):
            kernel.add_replication(rep, scenario.workstations,
                                   scenario.task_bag)
        kernel.run()
        assert kernel.fallback_reps == set()
        # ... and with the native idle path the reports still match the
        # engine bit for bit.
        fresh = [flaky_owners(seed=point_seed(0, "flaky_owners", r))
                 for r in range(50)]
        event = [CycleStealingSimulation(s.workstations,
                                         EqualizingAdaptiveScheduler(),
                                         task_bag=s.task_bag).run()
                 for s in fresh]
        for rep, event_report in enumerate(event):
            assert_reports_identical(event_report, kernel.report(rep))

    def test_under_committing_scheduler_fuzz(self):
        """Randomized traces over an idle-heavy scheduler, bit for bit."""
        rng = np.random.default_rng(123)
        for trial in range(25):
            lifespan = float(rng.uniform(50.0, 300.0))
            times = np.sort(rng.uniform(0.0, lifespan,
                                        rng.integers(0, 6))).tolist()
            ws = _ws(lifespan=lifespan, setup=float(rng.uniform(0.5, 3.0)),
                     budget=int(rng.integers(0, 5)), interrupts=tuple(times))
            scheduler = _UnderCommittingScheduler(
                fraction=float(rng.uniform(0.3, 1.0)),
                periods=int(rng.integers(1, 5)))
            event = CycleStealingSimulation([ws], scheduler).run()
            (batch,) = simulate_batch([[ws]], scheduler)
            assert_reports_identical(event, batch)
