"""Tests for the paper's guideline schedulers (Sections 3.1, 3.2, 5.2)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CycleStealingParams
from repro.analysis import bounds
from repro.core.exceptions import SchedulingError
from repro.schedules import (
    EqualizingAdaptiveScheduler,
    ExactP1Scheduler,
    RosenbergAdaptiveScheduler,
    RosenbergNonAdaptiveScheduler,
    TunedEqualPeriodScheduler,
)

lifespans = st.floats(min_value=20.0, max_value=50_000.0, allow_nan=False, allow_infinity=False)
budgets = st.integers(min_value=0, max_value=4)


class TestRosenbergNonAdaptive:
    def test_p0_single_period(self):
        params = CycleStealingParams(100.0, 1.0, 0)
        schedule = RosenbergNonAdaptiveScheduler().opportunity_schedule(params)
        assert schedule.num_periods == 1

    def test_period_count_matches_formula(self):
        params = CycleStealingParams(10_000.0, 1.0, 2)
        schedule = RosenbergNonAdaptiveScheduler().opportunity_schedule(params)
        assert schedule.num_periods == bounds.nonadaptive_num_periods(10_000.0, 1.0, 2)

    def test_periods_equal_and_close_to_formula(self):
        params = CycleStealingParams(10_000.0, 1.0, 2)
        schedule = RosenbergNonAdaptiveScheduler().opportunity_schedule(params)
        expected = bounds.nonadaptive_period_length(10_000.0, 1.0, 2)
        first = schedule[0]
        assert all(t == pytest.approx(first) for t in schedule.periods)
        assert first == pytest.approx(expected, rel=0.02)

    def test_guaranteed_work_matches_section31(self):
        """Measured worst-case work equals the derived closed form exactly."""
        for U in (1_000.0, 10_000.0, 40_000.0):
            for p in (1, 2, 4):
                params = CycleStealingParams(U, 1.0, p)
                scheduler = RosenbergNonAdaptiveScheduler()
                measured = scheduler.guaranteed_work(params)
                predicted = bounds.nonadaptive_guarantee(U, 1.0, p)
                # The floor in m and the remainder absorbed by the last
                # period keep the two within a few setup costs of each other.
                assert measured == pytest.approx(predicted, abs=6.0)

    @settings(deadline=None, max_examples=30)
    @given(lifespans, budgets)
    def test_schedule_always_covers_lifespan(self, U, p):
        params = CycleStealingParams(U, 1.0, p)
        schedule = RosenbergNonAdaptiveScheduler().opportunity_schedule(params)
        assert schedule.total_length == pytest.approx(U, rel=1e-9)

    def test_predicted_work_helper(self):
        params = CycleStealingParams(5_000.0, 2.0, 3)
        scheduler = RosenbergNonAdaptiveScheduler()
        assert scheduler.predicted_work(params) == pytest.approx(
            bounds.nonadaptive_guarantee(5_000.0, 2.0, 3))

    def test_degenerate_small_lifespan(self):
        params = CycleStealingParams(1.5, 1.0, 3)
        schedule = RosenbergNonAdaptiveScheduler().opportunity_schedule(params)
        assert schedule.total_length == pytest.approx(1.5)


class TestTunedEqualPeriod:
    def test_never_worse_than_guideline(self):
        params = CycleStealingParams(2_000.0, 1.0, 2)
        guideline = RosenbergNonAdaptiveScheduler().guaranteed_work(params)
        tuned = TunedEqualPeriodScheduler(max_candidates=80).guaranteed_work(params)
        assert tuned >= guideline - 1e-9

    def test_rejects_bad_max_candidates(self):
        with pytest.raises(ValueError):
            TunedEqualPeriodScheduler(max_candidates=0)


class TestExactP1:
    def test_p0_single_period(self):
        schedule = ExactP1Scheduler().episode_schedule(100.0, 0, 1.0)
        assert schedule.num_periods == 1

    def test_p2_rejected(self):
        with pytest.raises(SchedulingError):
            ExactP1Scheduler().episode_schedule(100.0, 2, 1.0)

    def test_nonpositive_lifespan_rejected(self):
        with pytest.raises(SchedulingError):
            ExactP1Scheduler().episode_schedule(0.0, 1, 1.0)

    def test_matches_table2_structure(self):
        U, c = 10_000.0, 1.0
        schedule = ExactP1Scheduler().episode_schedule(U, 1, c)
        m = bounds.optimal_p1_num_periods(U, c)
        eps = bounds.optimal_p1_epsilon(U, c)
        assert schedule.num_periods == m
        assert 0.0 < eps <= 1.0
        # Last two periods are (1 + eps)c, earlier ones (m - k + eps)c.
        assert schedule[m - 1] == pytest.approx((1 + eps) * c, rel=1e-6)
        assert schedule[m - 2] == pytest.approx((1 + eps) * c, rel=1e-6)
        assert schedule[0] == pytest.approx((m - 1 + eps) * c, rel=1e-6)
        # Consecutive differences of c in the body (Table 2 / Section 5.2).
        for k in range(0, m - 3):
            assert schedule[k] - schedule[k + 1] == pytest.approx(c, rel=1e-6)

    def test_schedule_covers_lifespan_exactly(self):
        for U in (57.0, 313.0, 9_999.5):
            schedule = ExactP1Scheduler().episode_schedule(U, 1, 1.0)
            assert schedule.total_length == pytest.approx(U)

    def test_guaranteed_work_matches_w1_formula(self):
        """W^(1)[U] = U - sqrt(2cU) - c/2 up to O(1)."""
        for U in (1_000.0, 10_000.0, 100_000.0):
            params = CycleStealingParams(U, 1.0, 1)
            measured = ExactP1Scheduler().guaranteed_work(params)
            assert measured == pytest.approx(bounds.optimal_p1_work(U, 1.0), abs=2.0)

    def test_is_optimal_against_dp(self, small_table):
        params = CycleStealingParams(500.0, 1.0, 1)
        measured = ExactP1Scheduler().guaranteed_work(params)
        assert measured >= small_table.value(1, 500) - 1.5

    def test_small_lifespan_falls_back_to_single_period(self):
        schedule = ExactP1Scheduler().episode_schedule(1.5, 1, 1.0)
        assert schedule.num_periods == 1


class TestEqualizingAdaptive:
    def test_p0_single_period(self):
        schedule = EqualizingAdaptiveScheduler().episode_schedule(100.0, 0, 1.0)
        assert schedule.num_periods == 1

    def test_invalid_tail_epsilon(self):
        with pytest.raises(ValueError):
            EqualizingAdaptiveScheduler(tail_epsilon=0.0)
        with pytest.raises(ValueError):
            EqualizingAdaptiveScheduler(tail_epsilon=1.5)

    def test_schedule_covers_residual(self):
        scheduler = EqualizingAdaptiveScheduler()
        for L in (10.0, 123.4, 5_000.0):
            for p in (1, 2, 3):
                schedule = scheduler.episode_schedule(L, p, 1.0)
                assert schedule.total_length == pytest.approx(L, rel=1e-9)

    def test_fully_productive_body(self):
        schedule = EqualizingAdaptiveScheduler().episode_schedule(5_000.0, 2, 1.0)
        assert schedule.is_fully_productive(1.0)

    def test_p1_close_to_exact_optimum(self):
        params = CycleStealingParams(10_000.0, 1.0, 1)
        eq = EqualizingAdaptiveScheduler().guaranteed_work(params)
        opt = bounds.optimal_p1_work(10_000.0, 1.0)
        assert eq >= opt - 3.0

    def test_p2_close_to_dp_optimum(self, small_table):
        params = CycleStealingParams(600.0, 1.0, 2)
        eq = EqualizingAdaptiveScheduler().guaranteed_work(params)
        assert eq >= small_table.value(2, 600) - 3.0

    def test_dp_oracle_variant_not_worse(self, small_table):
        params = CycleStealingParams(600.0, 1.0, 2)
        closed = EqualizingAdaptiveScheduler().guaranteed_work(params)
        exact = EqualizingAdaptiveScheduler(oracle=small_table.as_oracle()).guaranteed_work(params)
        assert exact >= closed - 2.0

    def test_respects_theorem51_shape(self):
        """Loss stays Θ(√(cU)): bounded by ~2.6·sqrt(2cU) for any p."""
        for p in (1, 2, 3, 4):
            params = CycleStealingParams(20_000.0, 1.0, p)
            work = EqualizingAdaptiveScheduler().guaranteed_work(params)
            loss = params.lifespan - work
            assert loss <= 2.6 * math.sqrt(2 * 20_000.0) + 4 * p

    def test_nonpositive_lifespan_rejected(self):
        with pytest.raises(SchedulingError):
            EqualizingAdaptiveScheduler().episode_schedule(0.0, 1, 1.0)

    def test_predicted_work(self):
        s = EqualizingAdaptiveScheduler()
        assert s.predicted_work(10_000.0, 1.0, 2) == pytest.approx(
            bounds.adaptive_guarantee(10_000.0, 1.0, 2))


class TestRosenbergAdaptive:
    def test_tail_period_count(self):
        assert RosenbergAdaptiveScheduler.tail_period_count(1) == 1
        assert RosenbergAdaptiveScheduler.tail_period_count(2) == 2
        assert RosenbergAdaptiveScheduler.tail_period_count(3) == 2
        assert RosenbergAdaptiveScheduler.tail_period_count(0) == 0

    def test_period_increment(self):
        assert RosenbergAdaptiveScheduler.period_increment(1, 1.0) == pytest.approx(1.0)
        assert RosenbergAdaptiveScheduler.period_increment(2, 1.0) == pytest.approx(0.25)
        assert RosenbergAdaptiveScheduler.period_increment(3, 2.0) == pytest.approx(2.0 / 16)

    def test_invalid_tail_epsilon(self):
        with pytest.raises(ValueError):
            RosenbergAdaptiveScheduler(tail_epsilon=2.0)

    def test_schedule_covers_residual(self):
        scheduler = RosenbergAdaptiveScheduler()
        for L in (10.0, 777.0, 5_000.0):
            for p in (1, 2, 3):
                schedule = scheduler.episode_schedule(L, p, 1.0)
                assert schedule.total_length == pytest.approx(L, rel=1e-9)

    def test_p1_matches_table2_guideline(self):
        U, c = 10_000.0, 1.0
        schedule = RosenbergAdaptiveScheduler().episode_schedule(U, 1, c)
        m = schedule.num_periods
        # Table 2: m = floor(sqrt(2U/c)) + 2 (up to the front-period rounding
        # and the printed tail-count formula giving one 3c/2 period for p=1).
        assert abs(m - bounds.guideline_p1_num_periods(U, c)) <= 3
        # Short tail period(s) of 3c/2 and arithmetic increments of c.
        assert schedule[m - 1] == pytest.approx(1.5 * c)
        for k in range(1, m - 2):
            assert schedule[k] - schedule[k + 1] == pytest.approx(c, rel=1e-6)

    def test_p1_work_close_to_optimal(self):
        params = CycleStealingParams(10_000.0, 1.0, 1)
        work = RosenbergAdaptiveScheduler().guaranteed_work(params)
        assert work >= bounds.optimal_p1_work(10_000.0, 1.0) - 5.0

    def test_p0_single_period(self):
        schedule = RosenbergAdaptiveScheduler().episode_schedule(100.0, 0, 1.0)
        assert schedule.num_periods == 1

    @settings(deadline=None, max_examples=25)
    @given(lifespans, st.integers(min_value=1, max_value=3))
    def test_always_valid_episode(self, L, p):
        schedule = RosenbergAdaptiveScheduler().episode_schedule(L, p, 1.0)
        assert schedule.total_length == pytest.approx(L, rel=1e-9)
        assert all(t > 0 for t in schedule)
