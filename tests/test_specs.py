"""Tests for declarative experiment specs (:mod:`repro.specs`)."""

import json
import pathlib

import pytest

#: The committed spec files, located relative to this test file so the
#: suite passes regardless of pytest's working directory.
_SPECS_DIR = pathlib.Path(__file__).resolve().parent.parent / "specs"

from repro.specs import (
    ExperimentSpec,
    ScenarioPoint,
    SpecError,
    _parse_mini_toml,
    canonical_spec_json,
    default_run_id,
    evaluate_payload,
    expand_payloads,
    load_spec,
    parse_spec,
    spec_to_dict,
)

SCENARIO_SPEC = {
    "experiment": {"name": "t-scenario", "kind": "scenario", "seed": 3,
                   "replications": 2, "backend": "batch"},
    "scenario": {"family": "laptop",
                 "schedulers": ["equalizing-adaptive", "fixed-period"]},
}

SWEEP_SPEC = {
    "experiment": {"name": "t-sweep", "kind": "sweep", "seed": 0,
                   "replications": 3},
    "sweep": {"lifespans": [100.0, 200.0], "interrupts": [1],
              "schedulers": ["equalizing-adaptive", "single-period"],
              "adversaries": ["poisson-owner"], "optimal": True},
}

SCENARIO_TOML = """\
# comment line
[experiment]
name = "t-scenario"          # trailing comment
kind = "scenario"
seed = 3
replications = 2
backend = "batch"

[scenario]
family = "laptop"
schedulers = ["equalizing-adaptive", "fixed-period"]
"""


class TestParsing:
    def test_parse_scenario_spec(self):
        spec = parse_spec(SCENARIO_SPEC)
        assert spec.kind == "scenario" and spec.family == "laptop"
        assert spec.schedulers == ("equalizing-adaptive", "fixed-period")
        assert spec.seed == 3 and spec.replications == 2
        assert spec.backend == "batch"

    def test_parse_sweep_spec(self):
        spec = parse_spec(SWEEP_SPEC)
        assert spec.kind == "sweep"
        assert spec.lifespans == (100.0, 200.0)
        assert spec.interrupts == (1,)
        assert spec.adversaries == ("poisson-owner",)
        assert spec.optimal is True
        assert spec.to_grid().size == 4

    def test_dict_round_trip(self):
        for data in (SCENARIO_SPEC, SWEEP_SPEC):
            spec = parse_spec(data)
            assert parse_spec(spec_to_dict(spec)) == spec

    def test_toml_and_json_forms_agree(self, tmp_path):
        toml_path = tmp_path / "spec.toml"
        toml_path.write_text(SCENARIO_TOML)
        json_path = tmp_path / "spec.json"
        json_path.write_text(json.dumps(SCENARIO_SPEC))
        assert load_spec(toml_path) == load_spec(json_path)

    def test_mini_toml_parser_matches_tomllib(self):
        tomllib = pytest.importorskip("tomllib")
        assert _parse_mini_toml(SCENARIO_TOML, "x.toml") \
            == tomllib.loads(SCENARIO_TOML)

    def test_mini_toml_parser_on_committed_specs(self):
        tomllib = pytest.importorskip("tomllib")
        paths = sorted(_SPECS_DIR.glob("*.toml"))
        assert paths, "committed specs are missing"
        for path in paths:
            text = path.read_text()
            assert _parse_mini_toml(text, str(path)) == tomllib.loads(text), path

    def test_committed_specs_all_validate(self):
        paths = sorted(_SPECS_DIR.glob("*.toml")) + sorted(_SPECS_DIR.glob("*.json"))
        assert len(paths) >= 9
        families = set()
        for path in paths:
            spec = load_spec(path)
            assert expand_payloads(spec)
            if spec.kind == "scenario":
                families.add(spec.family)
        # every registered family is runnable from a committed spec
        assert families == {"laptop", "desktops", "lab", "office", "cluster",
                            "flaky", "diurnal", "fleet"}

    def test_run_id_is_deterministic_and_content_sensitive(self):
        a = parse_spec(SCENARIO_SPEC)
        b = parse_spec(json.loads(json.dumps(SCENARIO_SPEC)))
        assert default_run_id(a) == default_run_id(b)
        assert default_run_id(a).startswith("t-scenario-")
        changed = dict(SCENARIO_SPEC,
                       experiment=dict(SCENARIO_SPEC["experiment"], seed=4))
        assert default_run_id(parse_spec(changed)) != default_run_id(a)
        assert canonical_spec_json(a) == canonical_spec_json(b)


class TestMalformedSpecs:
    """Error messages must be actionable: say where, what, and what's allowed."""

    def assert_error(self, data, *needles, source=None):
        with pytest.raises(SpecError) as excinfo:
            parse_spec(data, source=source)
        message = str(excinfo.value)
        for needle in needles:
            assert needle in message, (needle, message)
        return message

    def test_missing_experiment_table(self):
        self.assert_error({}, "[experiment]")

    def test_bad_kind_lists_choices(self):
        data = {"experiment": {"name": "x", "kind": "banana"}}
        self.assert_error(data, "sweep", "scenario", "banana")

    def test_unknown_key_lists_allowed(self):
        data = {"experiment": dict(SCENARIO_SPEC["experiment"], typo=1),
                "scenario": SCENARIO_SPEC["scenario"]}
        self.assert_error(data, "typo", "allowed")

    def test_unknown_scheduler_lists_registry_names(self):
        data = {"experiment": SCENARIO_SPEC["experiment"],
                "scenario": {"family": "laptop", "schedulers": ["warp-drive"]}}
        self.assert_error(data, "warp-drive", "equalizing-adaptive")

    def test_unknown_family_lists_registry_names(self):
        data = {"experiment": SCENARIO_SPEC["experiment"],
                "scenario": {"family": "mars-rover"}}
        self.assert_error(data, "mars-rover", "laptop")

    def test_source_path_is_woven_into_message(self):
        message = self.assert_error({}, "spec.toml", source="spec.toml")
        assert "spec.toml" in message

    def test_scenario_needs_replications(self):
        data = {"experiment": {"name": "x", "kind": "scenario"},
                "scenario": {"family": "laptop"}}
        self.assert_error(data, "replications")

    def test_adversaries_scalar_or_bare_string_get_a_spec_error(self):
        exp = {"name": "x", "kind": "sweep"}
        base_sweep = {"lifespans": [100.0],
                      "schedulers": ["equalizing-adaptive"]}
        # A scalar must not raise a raw TypeError...
        self.assert_error({"experiment": exp,
                           "sweep": {**base_sweep, "adversaries": 5}},
                          "sweep.adversaries")
        # ...and a bare string must not be split into characters.
        self.assert_error({"experiment": exp,
                           "sweep": {**base_sweep,
                                     "adversaries": "poisson-owner"}},
                          "sweep.adversaries")

    def test_sweep_replications_need_adversaries(self):
        data = {"experiment": {"name": "x", "kind": "sweep", "replications": 5},
                "sweep": {"lifespans": [100.0],
                          "schedulers": ["equalizing-adaptive"]}}
        self.assert_error(data, "adversaries")

    def test_nonadaptive_scheduler_rejected_for_scenarios(self):
        data = {"experiment": SCENARIO_SPEC["experiment"],
                "scenario": {"family": "laptop",
                             "schedulers": ["rosenberg-nonadaptive"]}}
        self.assert_error(data, "rosenberg-nonadaptive", "NOW simulator")

    def test_wrong_tables_for_kind(self):
        self.assert_error({"experiment": {"name": "x", "kind": "sweep"},
                           "sweep": {"lifespans": [1.0],
                                     "schedulers": ["equalizing-adaptive"]},
                           "scenario": {"family": "laptop"}}, "[scenario]")

    def test_bad_value_types(self):
        base = {"experiment": dict(SCENARIO_SPEC["experiment"]),
                "scenario": dict(SCENARIO_SPEC["scenario"])}
        bad_seed = {**base, "experiment": {**base["experiment"], "seed": "zero"}}
        self.assert_error(bad_seed, "experiment.seed")
        bad_backend = {**base,
                       "experiment": {**base["experiment"], "backend": "warp"}}
        self.assert_error(bad_backend, "backend", "event")

    def test_root_must_be_a_table(self):
        with pytest.raises(SpecError):
            parse_spec(["not", "a", "table"])

    def test_empty_name_rejected(self):
        self.assert_error({"experiment": {"name": "", "kind": "sweep"}},
                          "experiment.name")

    def test_negative_seed_rejected(self):
        data = {"experiment": dict(SCENARIO_SPEC["experiment"], seed=-1),
                "scenario": SCENARIO_SPEC["scenario"]}
        self.assert_error(data, "experiment.seed")

    def test_bad_sweep_value_shapes(self):
        exp = {"name": "x", "kind": "sweep"}
        self.assert_error({"experiment": exp,
                           "sweep": {"lifespans": [],
                                     "schedulers": ["equalizing-adaptive"]}},
                          "sweep.lifespans")
        self.assert_error({"experiment": exp,
                           "sweep": {"lifespans": ["a"],
                                     "schedulers": ["equalizing-adaptive"]}},
                          "numbers")
        self.assert_error({"experiment": exp,
                           "sweep": {"lifespans": [100.0], "interrupts": [1.5],
                                     "schedulers": ["equalizing-adaptive"]}},
                          "integers")
        self.assert_error({"experiment": exp,
                           "sweep": {"lifespans": [100.0], "schedulers": [1]}},
                          "strings")
        self.assert_error({"experiment": exp,
                           "sweep": {"lifespans": [100.0], "optimal": "yes",
                                     "schedulers": ["equalizing-adaptive"]}},
                          "sweep.optimal")

    def test_scenario_params_typo_caught_at_parse_time(self):
        exp = SCENARIO_SPEC["experiment"]
        message = self.assert_error(
            {"experiment": exp,
             "scenario": {"family": "laptop",
                          "params": {"num_machine": 5}}},  # typo
            "num_machine", "laptop")
        assert "not valid" in message

    def test_scenario_params_must_not_set_seed(self):
        exp = SCENARIO_SPEC["experiment"]
        self.assert_error(
            {"experiment": exp,
             "scenario": {"family": "laptop", "params": {"seed": 1}}},
            "seed", "experiment.seed")

    def test_bad_scenario_value_shapes(self):
        exp = SCENARIO_SPEC["experiment"]
        self.assert_error({"experiment": exp, "scenario": {"family": 7}},
                          "scenario.family")
        self.assert_error({"experiment": exp,
                           "scenario": {"family": "laptop", "params": [1]}},
                          "scenario.params")

    def test_invalid_toml_reports_path(self, tmp_path):
        pytest.importorskip("tomllib")
        path = tmp_path / "bad.toml"
        path.write_text("[unclosed\n")
        with pytest.raises(SpecError) as excinfo:
            load_spec(path)
        assert "bad.toml" in str(excinfo.value)

    def test_bad_file_extension_and_missing_file(self, tmp_path):
        path = tmp_path / "spec.yaml"
        path.write_text("x")
        with pytest.raises(SpecError):
            load_spec(path)
        with pytest.raises(SpecError):
            load_spec(tmp_path / "missing.toml")

    def test_invalid_json_reports_path(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(SpecError) as excinfo:
            load_spec(path)
        assert "bad.json" in str(excinfo.value)

    def test_mini_toml_rejects_garbage(self):
        with pytest.raises(SpecError):
            _parse_mini_toml("just some words\n", "x.toml")
        with pytest.raises(SpecError):
            _parse_mini_toml("key = {inline = 1}\n", "x.toml")
        with pytest.raises(SpecError):
            _parse_mini_toml("key =\n", "x.toml")
        with pytest.raises(SpecError):
            _parse_mini_toml("[a..b]\n", "x.toml")
        with pytest.raises(SpecError):
            _parse_mini_toml("a = 1\n[a]\n", "x.toml")
        with pytest.raises(SpecError):
            _parse_mini_toml('xs = ["unterminated]\n', "x.toml")
        with pytest.raises(SpecError):
            _parse_mini_toml(" = 1\n", "x.toml")

    def test_mini_toml_values(self):
        parsed = _parse_mini_toml(
            'a = 1_000\nb = -2.5\nc = 1e3\nd = true\ne = false\n'
            'f = "s"\ng = \'t\'\nempty = []\nnested = [[1, 2], [3]]\n',
            "x.toml")
        assert parsed == {"a": 1000, "b": -2.5, "c": 1000.0, "d": True,
                          "e": False, "f": "s", "g": "t", "empty": [],
                          "nested": [[1, 2], [3]]}


class TestFamilyParams:
    def test_scenario_params_round_trip_and_reach_the_generator(self):
        data = {
            "experiment": {"name": "custom", "kind": "scenario",
                           "replications": 2, "backend": "batch"},
            "scenario": {"family": "laptop",
                         "schedulers": ["equalizing-adaptive"],
                         "params": {"lifespan": 120.0, "interrupt_budget": 1}},
        }
        spec = parse_spec(data)
        assert spec.family_params == {"lifespan": 120.0, "interrupt_budget": 1}
        assert parse_spec(spec_to_dict(spec)) == spec
        (payload,) = expand_payloads(spec)
        row = evaluate_payload(payload)
        assert row["work_n"] == 2

    def test_scenario_params_from_toml_subtable(self):
        spec = parse_spec(_parse_mini_toml(
            '[experiment]\nname = "x"\nkind = "scenario"\nreplications = 1\n'
            '[scenario]\nfamily = "laptop"\n'
            '[scenario.params]\nlifespan = 90.0\n', "x.toml"))
        assert spec.family_params == {"lifespan": 90.0}


class TestPayloads:
    def test_scenario_payload_expansion_order(self):
        spec = parse_spec(SCENARIO_SPEC)
        payloads = expand_payloads(spec)
        assert [p.scheduler for p in payloads] == list(spec.schedulers)
        assert all(isinstance(p, ScenarioPoint) for p in payloads)
        assert [p.index for p in payloads] == [0, 1]

    def test_sweep_payload_expansion_matches_grid(self):
        spec = parse_spec(SWEEP_SPEC)
        payloads = expand_payloads(spec, cache_dir="/tmp/somewhere")
        assert len(payloads) == spec.to_grid().size
        point, config = payloads[0]
        assert config.cache_dir == "/tmp/somewhere"
        assert config.replications == 3 and config.include_optimal is True

    def test_evaluate_scenario_payload(self):
        spec = parse_spec({
            "experiment": {"name": "tiny", "kind": "scenario",
                           "replications": 2, "backend": "batch"},
            "scenario": {"family": "laptop",
                         "schedulers": ["equalizing-adaptive"]},
        })
        (payload,) = expand_payloads(spec)
        row = evaluate_payload(payload)
        assert row["family"] == "laptop"
        assert row["scheduler"] == "equalizing-adaptive"
        assert row["work_n"] == 2 and row["work_mean"] > 0.0

    def test_scenario_backends_agree(self):
        base = {
            "experiment": {"name": "tiny", "kind": "scenario",
                           "replications": 2},
            "scenario": {"family": "laptop",
                         "schedulers": ["equalizing-adaptive"]},
        }
        rows = {}
        for backend in ("event", "batch"):
            data = {**base, "experiment": {**base["experiment"],
                                           "backend": backend}}
            (payload,) = expand_payloads(parse_spec(data))
            rows[backend] = evaluate_payload(payload)
        assert rows["event"]["work_mean"] == pytest.approx(
            rows["batch"]["work_mean"], rel=1e-9)


class TestSpecDataclass:
    def test_to_grid_requires_sweep_kind(self):
        spec = parse_spec(SCENARIO_SPEC)
        with pytest.raises(SpecError):
            spec.to_grid()

    def test_num_points(self):
        assert parse_spec(SCENARIO_SPEC).num_points() == 2
        assert parse_spec(SWEEP_SPEC).num_points() == 4

    def test_specs_are_plain_picklable_data(self):
        import pickle

        spec = parse_spec(SWEEP_SPEC)
        assert pickle.loads(pickle.dumps(spec)) == spec
        assert isinstance(spec, ExperimentSpec)


class TestLazyExpansion:
    """expand_payload_at / payload digests — the run store's lazy resume."""

    def test_expand_payload_at_matches_full_expansion(self):
        from repro.specs import expand_payload_at

        for raw in (SWEEP_SPEC, SCENARIO_SPEC):
            spec = parse_spec(raw)
            full = expand_payloads(spec)
            for i in range(len(full)):
                assert expand_payload_at(spec, i) == full[i]

    def test_count_payloads_matches_expansion(self):
        from repro.specs import count_payloads

        for raw in (SWEEP_SPEC, SCENARIO_SPEC):
            spec = parse_spec(raw)
            assert count_payloads(spec) == len(expand_payloads(spec))

    def test_grid_point_at_matches_points(self):
        spec = parse_spec({
            "experiment": {"name": "big", "kind": "sweep", "seed": 0,
                           "replications": 1},
            "sweep": {"lifespans": [100.0, 200.0, 300.0],
                      "setup_costs": [1.0, 2.0], "interrupts": [1, 2],
                      "schedulers": ["equalizing-adaptive", "single-period"],
                      "adversaries": ["poisson-owner", "uniform-owner"]},
        })
        grid = spec.to_grid()
        points = grid.points()
        assert grid.size == len(points) == 48
        for i, point in enumerate(points):
            assert grid.point_at(i) == point

    def test_point_at_rejects_out_of_range(self):
        from repro.core.exceptions import InvalidParameterError

        grid = parse_spec(SWEEP_SPEC).to_grid()
        with pytest.raises(InvalidParameterError):
            grid.point_at(grid.size)
        with pytest.raises(InvalidParameterError):
            grid.point_at(-1)

    def test_expand_payload_at_rejects_bad_scenario_index(self):
        from repro.specs import expand_payload_at

        with pytest.raises(SpecError):
            expand_payload_at(parse_spec(SCENARIO_SPEC), 2)

    def test_payload_digests_are_stable_and_identity_only(self):
        from repro.specs import expand_payload_at, payload_digest, payload_digests

        spec = parse_spec(SWEEP_SPEC)
        digests = payload_digests(spec)
        assert len(digests) == len(expand_payloads(spec))
        assert len(set(digests)) == len(digests)  # one identity per point
        # Execution knobs (profile, cache_dir) never change the identity.
        assert payload_digest(expand_payload_at(spec, 1, profile=True,
                                                cache_dir="/tmp/x")) \
            == digests[1]
        # ... but result-shaping knobs do.
        other = parse_spec({**SWEEP_SPEC,
                            "experiment": {**SWEEP_SPEC["experiment"],
                                           "seed": 99}})
        assert payload_digests(other) != digests

    def test_scenario_digests_cover_family_params(self):
        from repro.specs import payload_digests

        base = parse_spec(SCENARIO_SPEC)
        tweaked = parse_spec({**SCENARIO_SPEC,
                              "scenario": {**SCENARIO_SPEC["scenario"],
                                           "params": {"lifespan": 300.0}}})
        assert payload_digests(base) != payload_digests(tweaked)
