"""Tests for the resumable run store (:mod:`repro.runstore`).

The headline property — an interrupted run, resumed, produces
byte-identical reports to an uninterrupted run — is pinned twice: once by
stopping at a point boundary (``max_points``) and once by SIGKILLing a
real ``repro run`` subprocess mid-sweep.
"""

import json
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

import repro.runstore as runstore_module
from repro.reporting import render_run_report, write_run_report
from repro.runstore import (
    Run,
    RunStore,
    RunStoreError,
    read_row_shard,
    resume_run,
    run_spec,
    write_row_shard,
)
from repro.specs import parse_spec

SWEEP_SPEC = {
    "experiment": {"name": "rs-sweep", "kind": "sweep", "seed": 1,
                   "replications": 3},
    "sweep": {"lifespans": [100.0, 200.0, 300.0], "interrupts": [1],
              "schedulers": ["equalizing-adaptive", "single-period"],
              "adversaries": ["poisson-owner"], "optimal": True},
}

SCENARIO_SPEC = {
    "experiment": {"name": "rs-scenario", "kind": "scenario", "seed": 0,
                   "replications": 2, "backend": "batch"},
    "scenario": {"family": "laptop",
                 "schedulers": ["equalizing-adaptive", "fixed-period"]},
}


class TestShardRoundTrip:
    def test_scalars_round_trip(self, tmp_path):
        path = tmp_path / "row.npz"
        row = {"scheduler": "equalizing-adaptive", "lifespan": 100.0,
               "max_interrupts": 2, "optimal": True, "work_mean": 87.25}
        write_row_shard(path, row)
        back = read_row_shard(path)
        assert back == row
        assert isinstance(back["scheduler"], str)
        assert isinstance(back["max_interrupts"], int)
        assert isinstance(back["work_mean"], float)
        assert back["optimal"] is True

    def test_unstorable_values_rejected_at_write_time(self, tmp_path):
        # None becomes an object array, which np.load(allow_pickle=False)
        # could never read back — the shard would look corrupt forever and
        # the run could never complete.  Must fail on write, not on read.
        path = tmp_path / "row.npz"
        with pytest.raises(RunStoreError) as excinfo:
            write_row_shard(path, {"ok": 1.0, "bad": None})
        assert "bad" in str(excinfo.value)
        assert not path.exists()

    def test_write_is_atomic_no_tmp_left_behind(self, tmp_path):
        path = tmp_path / "row.npz"
        write_row_shard(path, {"x": 1})
        leftovers = [n for n in os.listdir(tmp_path) if n.endswith(".tmp")]
        assert leftovers == []

    def test_array_values_round_trip(self, tmp_path):
        path = tmp_path / "arr.npz"
        write_row_shard(path, {"trace": np.array([1.0, 2.0, 3.0]), "n": 3})
        back = read_row_shard(path)
        assert back["n"] == 3
        np.testing.assert_array_equal(back["trace"], [1.0, 2.0, 3.0])

    def test_corrupt_shard_raises(self, tmp_path):
        path = tmp_path / "bad.npz"
        path.write_bytes(b"this is not a zip archive")
        with pytest.raises(RunStoreError):
            read_row_shard(path)
        truncated = tmp_path / "trunc.npz"
        write_row_shard(truncated, {"x": np.arange(100)})
        data = truncated.read_bytes()
        truncated.write_bytes(data[: len(data) // 2])
        with pytest.raises(RunStoreError):
            read_row_shard(truncated)


class TestRunStore:
    def test_create_open_list(self, tmp_path):
        store = RunStore(tmp_path)
        spec = parse_spec(SCENARIO_SPEC)
        run = store.create(spec, run_id="r1")
        assert store.exists("r1")
        assert store.list_runs() == ["r1"]
        reopened = store.open("r1")
        assert reopened.spec() == spec
        assert reopened.num_points == 2
        assert reopened.status == "running"

    def test_open_missing_run_lists_known(self, tmp_path):
        store = RunStore(tmp_path)
        store.create(parse_spec(SCENARIO_SPEC), run_id="exists")
        with pytest.raises(RunStoreError) as excinfo:
            store.open("missing")
        assert "exists" in str(excinfo.value)

    def test_create_collision_rejected(self, tmp_path):
        store = RunStore(tmp_path)
        store.create(parse_spec(SCENARIO_SPEC), run_id="dup")
        with pytest.raises(RunStoreError):
            store.create(parse_spec(SCENARIO_SPEC), run_id="dup")

    def test_unreadable_manifest_raises(self, tmp_path):
        run_dir = tmp_path / "broken-run"
        run_dir.mkdir()
        (run_dir / "manifest.json").write_text("{not json")
        with pytest.raises(RunStoreError):
            _ = Run(str(run_dir)).manifest

    def test_list_runs_ignores_stray_entries(self, tmp_path):
        store = RunStore(tmp_path)
        store.create(parse_spec(SCENARIO_SPEC), run_id="real")
        (tmp_path / "not-a-run").mkdir()
        (tmp_path / "loose-file.txt").write_text("x")
        assert store.list_runs() == ["real"]
        assert RunStore(tmp_path / "nowhere").list_runs() == []

    def test_completed_points_skips_corrupt_shards(self, tmp_path):
        store = RunStore(tmp_path)
        run = store.create(parse_spec(SCENARIO_SPEC), run_id="c")
        run.write_point(0, {"x": 1.0})
        with open(run.shard_path(1), "wb") as handle:
            handle.write(b"torn write")
        assert run.completed_points() == {0}


class TestRunSpecExecution:
    def test_serial_and_parallel_rows_agree(self, tmp_path):
        spec = parse_spec(SWEEP_SPEC)
        serial = run_spec(spec, runs_dir=tmp_path / "a", jobs=1)
        parallel = run_spec(spec, runs_dir=tmp_path / "b", jobs=2)
        assert serial.status == "complete" == parallel.status
        assert serial.rows() == parallel.rows()

    def test_rerun_without_resume_flag_fails(self, tmp_path):
        spec = parse_spec(SCENARIO_SPEC)
        run_spec(spec, runs_dir=tmp_path)
        with pytest.raises(RunStoreError):
            run_spec(spec, runs_dir=tmp_path)

    def test_resume_refuses_a_different_spec(self, tmp_path):
        spec = parse_spec(SCENARIO_SPEC)
        run = run_spec(spec, runs_dir=tmp_path, max_points=1)
        other = parse_spec({**SCENARIO_SPEC,
                            "experiment": {**SCENARIO_SPEC["experiment"],
                                           "seed": 99}})
        with pytest.raises(RunStoreError):
            run_spec(other, runs_dir=tmp_path, run_id=run.run_id, resume=True)

    def test_resume_of_a_complete_run_is_a_noop(self, tmp_path):
        spec = parse_spec(SCENARIO_SPEC)
        run = run_spec(spec, runs_dir=tmp_path)
        before = run.rows()
        again = resume_run(run.run_id, runs_dir=tmp_path, jobs=0)
        assert again.status == "complete"
        assert again.rows() == before

    def test_max_points_checkpointing(self, tmp_path):
        spec = parse_spec(SWEEP_SPEC)
        run = run_spec(spec, runs_dir=tmp_path, max_points=2)
        assert run.status == "running"
        assert run.completed_points() == {0, 1}
        run = resume_run(run.run_id, runs_dir=tmp_path, max_points=2)
        assert run.completed_points() == {0, 1, 2, 3}
        run = resume_run(run.run_id, runs_dir=tmp_path)
        assert run.status == "complete"
        assert len(run.rows()) == 6

    def test_interrupted_then_resumed_report_is_byte_identical(self, tmp_path):
        spec = parse_spec(SWEEP_SPEC)
        # Uninterrupted reference run.
        full = run_spec(spec, runs_dir=tmp_path / "full")
        # Interrupted at a point boundary, then resumed.
        broken = run_spec(spec, runs_dir=tmp_path / "broken", max_points=3)
        assert broken.status == "running"
        resumed = resume_run(broken.run_id, runs_dir=tmp_path / "broken")
        assert resumed.status == "complete"
        assert resumed.rows() == full.rows()
        assert render_run_report(resumed) == render_run_report(full)

    def test_resume_recomputes_a_corrupted_point(self, tmp_path):
        spec = parse_spec(SWEEP_SPEC)
        run = run_spec(spec, runs_dir=tmp_path)
        reference = run.rows()
        with open(run.shard_path(2), "wb") as handle:
            handle.write(b"disk corruption")
        resumed = resume_run(run.run_id, runs_dir=tmp_path)
        assert resumed.rows() == reference

    def test_scenario_spec_runs_and_reports(self, tmp_path):
        spec = parse_spec(SCENARIO_SPEC)
        run = run_spec(spec, runs_dir=tmp_path)
        report = render_run_report(run)
        assert "# Run report: rs-scenario" in report
        assert "`laptop`" in report
        assert "Monte-Carlo replication" in report
        path = write_run_report(run)
        assert os.path.exists(path)
        assert open(path).read() == report

    def test_partial_run_report_says_so(self, tmp_path):
        spec = parse_spec(SWEEP_SPEC)
        run = run_spec(spec, runs_dir=tmp_path, max_points=1)
        report = render_run_report(run)
        assert "partial run" in report
        assert f"repro resume {run.run_id}" in report


def _synthetic_complete_run(root, num_points=64):
    """A completed run with ``num_points`` synthetic (but realistic) rows."""
    assert num_points % 4 == 0
    spec = parse_spec({
        "experiment": {"name": "synthetic", "kind": "sweep", "seed": 0},
        "sweep": {"lifespans": [100.0 + 10.0 * k for k in range(num_points // 4)],
                  "interrupts": [1, 2],
                  "schedulers": ["equalizing-adaptive", "single-period"]},
    })
    run = RunStore(root).create(spec, run_id="synthetic")
    for point in spec.to_grid().points():
        row = point.key_columns()
        row["guaranteed_work"] = 0.9 * point.lifespan - point.index * 1e-3
        run.write_point(point.index, row)
    run.mark_complete()
    return run


class TestColumnarSidecar:
    def test_sidecar_written_on_completion_and_sources_agree(self, tmp_path):
        run = run_spec(parse_spec(SWEEP_SPEC), runs_dir=tmp_path)
        assert os.path.exists(run.columns_path)
        via_auto = run.rows()
        via_shards = run.rows(source="shards")
        via_sidecar = run.rows(source="sidecar")
        assert via_auto == via_shards == via_sidecar
        assert len(via_auto) == 6

    def test_columns_view_round_trips_rows(self, tmp_path):
        run = run_spec(parse_spec(SWEEP_SPEC), runs_dir=tmp_path)
        columns = run.columns()
        assert len(columns) == 6
        assert columns.point_index.tolist() == list(range(6))
        assert columns.to_rows() == run.rows(source="shards")
        # Scalar python types survive the columnar round-trip exactly.
        row = columns.to_rows()[0]
        assert isinstance(row["scheduler"], str)
        assert isinstance(row["max_interrupts"], int)
        assert isinstance(row["guaranteed_work"], float)

    def test_warm_report_performs_zero_per_shard_reads(self, tmp_path,
                                                       monkeypatch):
        # The acceptance property: rendering a completed >= 64-point run
        # with a valid sidecar never opens a point shard.
        run = _synthetic_complete_run(tmp_path, num_points=64)
        reads = []
        real = runstore_module.read_row_shard
        monkeypatch.setattr(runstore_module, "read_row_shard",
                            lambda path: (reads.append(path), real(path))[1])
        reopened = RunStore(tmp_path).open("synthetic")
        report = render_run_report(reopened)
        assert "# Run report: synthetic" in report
        assert reads == []

    def test_corrupt_sidecar_falls_back_and_rebuilds(self, tmp_path):
        run = run_spec(parse_spec(SWEEP_SPEC), runs_dir=tmp_path)
        reference = run.rows(source="shards")
        with open(run.columns_path, "wb") as handle:
            handle.write(b"this is not a zip archive")
        assert run.rows() == reference  # fallback, then rebuild
        assert run.rows(source="sidecar") == reference  # rebuilt and valid

    def test_truncated_sidecar_falls_back_and_rebuilds(self, tmp_path):
        run = run_spec(parse_spec(SWEEP_SPEC), runs_dir=tmp_path)
        reference = run.rows(source="shards")
        data = open(run.columns_path, "rb").read()
        with open(run.columns_path, "wb") as handle:
            handle.write(data[: len(data) // 2])
        assert run.rows() == reference
        assert run.rows(source="sidecar") == reference

    def test_missing_sidecar_raises_only_for_source_sidecar(self, tmp_path):
        run = run_spec(parse_spec(SWEEP_SPEC), runs_dir=tmp_path)
        os.remove(run.columns_path)
        with pytest.raises(RunStoreError):
            run.rows(source="sidecar")
        assert len(run.rows()) == 6  # auto falls back (and rebuilds)
        with pytest.raises(ValueError):
            run.rows(source="nonsense")

    def test_stale_sidecar_after_recomputed_corrupt_shard(self, tmp_path):
        # A corrupt point shard is recomputed on resume; the sidecar
        # consolidated before the corruption must be refreshed, not
        # trusted, and both read paths must agree afterwards.
        run = run_spec(parse_spec(SWEEP_SPEC), runs_dir=tmp_path)
        reference = run.rows(source="shards")
        with open(run.shard_path(2), "wb") as handle:
            handle.write(b"disk corruption")
        # While shard 2 is corrupt the fallback serves one row fewer, and
        # the (pre-corruption) sidecar still covers the full shard set.
        assert len(run.rows(source="shards")) == 5
        resumed = resume_run(run.run_id, runs_dir=tmp_path)
        assert resumed.rows(source="sidecar") == reference
        assert resumed.rows(source="shards") == reference

    def test_sidecar_of_removed_shard_set_is_stale(self, tmp_path):
        run = run_spec(parse_spec(SWEEP_SPEC), runs_dir=tmp_path)
        os.remove(run.shard_path(3))
        # Shard set changed after consolidation: the sidecar is stale, so
        # a forced sidecar read refuses ...
        with pytest.raises(RunStoreError):
            run.rows(source="sidecar")
        # ... and auto reads fall back to the 5 surviving shards, then
        # rebuild a fresh (now valid) 5-point sidecar.
        assert len(run.rows()) == 5
        assert run.rows(source="sidecar") == run.rows(source="shards")

    def test_sidecar_from_another_run_is_rejected(self, tmp_path):
        a = run_spec(parse_spec(SWEEP_SPEC), runs_dir=tmp_path / "a")
        b = run_spec(parse_spec(SCENARIO_SPEC), runs_dir=tmp_path / "b")
        import shutil
        shutil.copyfile(a.columns_path, b.columns_path)
        # Manifest digest mismatch: the foreign sidecar must not serve.
        assert b.rows() == b.rows(source="shards")
        assert {row["family"] for row in b.rows()} == {"laptop"}

    def test_non_columnar_rows_skip_sidecar_gracefully(self, tmp_path):
        spec = parse_spec(SCENARIO_SPEC)
        run = RunStore(tmp_path).create(spec, run_id="mixed")
        run.write_point(0, {"scheduler": "a", "value": 1})     # int ...
        run.write_point(1, {"scheduler": "b", "value": 1.5})   # ... then float
        run.mark_complete()
        assert not os.path.exists(run.columns_path)
        rows = run.rows()
        assert [row["value"] for row in rows] == [1, 1.5]
        with pytest.raises(RunStoreError):
            run.columns()

    def test_array_valued_rows_skip_sidecar_gracefully(self, tmp_path):
        spec = parse_spec(SCENARIO_SPEC)
        run = RunStore(tmp_path).create(spec, run_id="arrays")
        run.write_point(0, {"scheduler": "a", "trace": np.arange(3.0)})
        run.write_point(1, {"scheduler": "b", "trace": np.arange(4.0)})
        run.mark_complete()
        assert not os.path.exists(run.columns_path)
        assert len(run.rows()) == 2

    def test_missing_column_round_trips_via_mask(self, tmp_path):
        spec = parse_spec(SCENARIO_SPEC)
        run = RunStore(tmp_path).create(spec, run_id="ragged")
        run.write_point(0, {"scheduler": "a", "work_mean": 1.25, "extra": 7})
        run.write_point(1, {"scheduler": "b", "work_mean": 2.5})
        run.mark_complete()
        assert os.path.exists(run.columns_path)
        rows = run.rows(source="sidecar")
        assert rows == run.rows(source="shards")
        assert "extra" in rows[0] and "extra" not in rows[1]

    def test_overwriting_a_point_drops_the_sidecar(self, tmp_path):
        # An in-place overwrite keeps the shard filename, so the shard-set
        # staleness check alone could not see it; write_point must drop
        # the sidecar so both read paths stay identical.
        run = run_spec(parse_spec(SWEEP_SPEC), runs_dir=tmp_path)
        assert os.path.exists(run.columns_path)
        corrected = dict(run.read_point(2), guaranteed_work=123.456)
        run.write_point(2, corrected)
        assert not os.path.exists(run.columns_path)
        rows = run.rows()  # fallback + rebuild over the corrected shard
        assert rows[2]["guaranteed_work"] == 123.456
        assert run.rows(source="sidecar") == run.rows(source="shards")

    def test_consolidate_with_no_shards_is_a_noop(self, tmp_path):
        run = RunStore(tmp_path).create(parse_spec(SCENARIO_SPEC),
                                        run_id="empty")
        assert run.consolidate_columns() is None
        assert not os.path.exists(run.columns_path)
        assert run.rows() == []

    def test_columns_sources_mirror_rows_sources(self, tmp_path):
        run = run_spec(parse_spec(SWEEP_SPEC), runs_dir=tmp_path)
        via_shards = run.columns(source="shards")
        via_sidecar = run.columns(source="sidecar")
        assert via_shards.to_rows() == via_sidecar.to_rows()
        with pytest.raises(ValueError):
            run.columns(source="nonsense")
        os.remove(run.columns_path)
        with pytest.raises(RunStoreError):
            run.columns(source="sidecar")
        assert run.columns().to_rows() == via_shards.to_rows()  # auto rebuild

    def test_future_sidecar_schema_is_ignored(self, tmp_path):
        run = run_spec(parse_spec(SWEEP_SPEC), runs_dir=tmp_path)
        reference = run.rows(source="shards")
        with np.load(run.columns_path) as archive:
            arrays = {name: archive[name] for name in archive.files}
        arrays["_schema"] = np.asarray(99)
        np.savez(run.columns_path, **arrays)
        with pytest.raises(RunStoreError):
            run.rows(source="sidecar")
        assert run.rows() == reference  # fallback + rebuild at version 1

    def test_sidecar_bytes_deterministic(self, tmp_path):
        run = run_spec(parse_spec(SWEEP_SPEC), runs_dir=tmp_path)
        first = open(run.columns_path, "rb").read()
        assert run.consolidate_columns(force=True) == run.columns_path
        assert open(run.columns_path, "rb").read() == first

    def test_resumed_and_uninterrupted_sidecars_byte_identical(self, tmp_path):
        spec = parse_spec(SWEEP_SPEC)
        full = run_spec(spec, runs_dir=tmp_path / "full")
        broken = run_spec(spec, runs_dir=tmp_path / "broken", max_points=3)
        resumed = resume_run(broken.run_id, runs_dir=tmp_path / "broken")
        assert open(resumed.columns_path, "rb").read() \
            == open(full.columns_path, "rb").read()

    def test_partial_run_gets_a_partial_sidecar(self, tmp_path):
        run = run_spec(parse_spec(SWEEP_SPEC), runs_dir=tmp_path,
                       max_points=2)
        assert run.status == "running"
        assert os.path.exists(run.columns_path)
        assert run.rows(source="sidecar") == run.rows(source="shards")
        assert len(run.rows()) == 2

    def test_content_digest_tracks_run_changes(self, tmp_path):
        run = run_spec(parse_spec(SWEEP_SPEC), runs_dir=tmp_path,
                       max_points=2)
        partial = run.content_digest()
        assert partial
        resumed = resume_run(run.run_id, runs_dir=tmp_path)
        complete = resumed.content_digest()
        assert complete and complete != partial
        os.remove(resumed.columns_path)
        assert resumed.content_digest() is None


class TestLazyResume:
    def test_manifest_records_payload_digests(self, tmp_path):
        run = run_spec(parse_spec(SWEEP_SPEC), runs_dir=tmp_path)
        digests = run.manifest["payload_digests"]
        assert len(digests) == run.num_points == 6
        assert all(isinstance(d, str) and len(d) == 64 for d in digests)

    def test_resume_never_expands_the_full_grid(self, tmp_path, monkeypatch):
        spec = parse_spec(SWEEP_SPEC)
        run = run_spec(spec, runs_dir=tmp_path, max_points=2)

        def boom(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("resume re-expanded the full grid")

        monkeypatch.setattr(runstore_module, "expand_payloads", boom)
        expanded = []
        real = runstore_module.expand_payload_at
        monkeypatch.setattr(
            runstore_module, "expand_payload_at",
            lambda spec, i, **kw: (expanded.append(i), real(spec, i, **kw))[1])
        resumed = resume_run(run.run_id, runs_dir=tmp_path)
        assert resumed.status == "complete"
        assert expanded == [2, 3, 4, 5]  # pending points only

    def test_payload_digest_mismatch_refuses_to_mix(self, tmp_path):
        run = run_spec(parse_spec(SWEEP_SPEC), runs_dir=tmp_path,
                       max_points=2)
        manifest = json.load(open(run.manifest_path))
        manifest["payload_digests"][3] = "0" * 64
        with open(run.manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(RunStoreError) as excinfo:
            resume_run(run.run_id, runs_dir=tmp_path)
        assert "digest mismatch" in str(excinfo.value)
        assert "point 3" in str(excinfo.value)

    def test_pre_digest_manifest_still_resumes(self, tmp_path):
        # Manifests written before version 2 carry no payload digests;
        # resume must fall back to the full expansion and still finish.
        spec = parse_spec(SWEEP_SPEC)
        reference = run_spec(spec, runs_dir=tmp_path / "ref").rows()
        run = run_spec(spec, runs_dir=tmp_path, max_points=2)
        manifest = json.load(open(run.manifest_path))
        del manifest["payload_digests"]
        manifest["version"] = 1
        with open(run.manifest_path, "w") as handle:
            json.dump(manifest, handle)
        resumed = resume_run(run.run_id, runs_dir=tmp_path)
        assert resumed.status == "complete"
        assert resumed.rows() == reference


class TestKillResume:
    """A real mid-run kill: SIGKILL the CLI subprocess, then resume."""

    SPEC_TOML = """\
[experiment]
name = "kill-test"
kind = "scenario"
seed = 0
replications = 30
backend = "event"

[scenario]
family = "laptop"
schedulers = ["equalizing-adaptive", "rosenberg-adaptive", "fixed-period", "single-period", "equal-split", "geometric"]
"""

    def _reference_report(self, spec_path, tmp_path):
        from repro.specs import load_spec

        # Same run id (in a separate store) so the reports can be compared
        # byte for byte, header included.
        run = run_spec(load_spec(spec_path), runs_dir=tmp_path / "ref",
                       run_id="victim")
        return render_run_report(run)

    def test_sigkill_mid_run_then_resume_matches(self, tmp_path):
        # Bounded internally: the poll loop gives up after 120 s and the
        # subprocess wait after 60 s, so no pytest-timeout mark is needed.
        spec_path = tmp_path / "kill.toml"
        spec_path.write_text(self.SPEC_TOML)
        runs_dir = tmp_path / "runs"
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep \
            + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "run", str(spec_path),
             "--runs-dir", str(runs_dir), "--run-id", "victim"],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        try:
            # Kill as soon as at least one point has been persisted (the
            # interesting window); if the run wins the race and finishes,
            # resume below degrades to a no-op — the equality still holds.
            points_dir = runs_dir / "victim" / "points"
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline and proc.poll() is None:
                if points_dir.is_dir() and any(points_dir.glob("point-*.npz")):
                    break
                time.sleep(0.02)
            killed = proc.poll() is None
            if killed:
                proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=60)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup on failure
                proc.kill()
                proc.wait()

        run = Run(str(runs_dir / "victim"))
        completed_before = run.completed_points()
        if killed:
            assert run.status == "running"
            assert len(completed_before) < 6
        resumed = resume_run("victim", runs_dir=runs_dir)
        assert resumed.status == "complete"
        assert resumed.completed_points() == set(range(6))
        assert render_run_report(resumed) \
            == self._reference_report(spec_path, tmp_path)

    def test_sigkill_during_sidecar_consolidation_then_resume(self, tmp_path):
        # Land the kill inside the consolidation window: the test-only
        # REPRO_TEST_CONSOLIDATE_DELAY hook makes the run stage the
        # sidecar, touch a `.consolidating` marker, and sleep before the
        # atomic publish — every point shard is already on disk when the
        # SIGKILL arrives.  Resume must re-consolidate and the report must
        # stay byte-identical to an uninterrupted run's.
        spec_path = tmp_path / "kill.toml"
        spec_path.write_text(self.SPEC_TOML.replace("replications = 30",
                                                    "replications = 5"))
        runs_dir = tmp_path / "runs"
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep \
            + env.get("PYTHONPATH", "")
        env["REPRO_TEST_CONSOLIDATE_DELAY"] = "120"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "run", str(spec_path),
             "--runs-dir", str(runs_dir), "--run-id", "victim"],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        marker = runs_dir / "victim" / ".consolidating"
        try:
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline and proc.poll() is None:
                if marker.exists():
                    break
                time.sleep(0.02)
            assert marker.exists(), "consolidation never started"
            assert proc.poll() is None, "run exited before the kill window"
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=60)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup on failure
                proc.kill()
                proc.wait()

        run = Run(str(runs_dir / "victim"))
        # Killed between the last shard and the status flip: all points
        # are durable, the sidecar publish never happened, and only whole
        # files are visible (the staged temp file is not a sidecar).
        assert run.status == "running"
        assert run.completed_points() == set(range(6))
        assert not os.path.exists(run.columns_path)
        resumed = resume_run("victim", runs_dir=runs_dir)
        assert resumed.status == "complete"
        assert resumed.rows(source="sidecar") == resumed.rows(source="shards")
        assert render_run_report(resumed) \
            == self._reference_report(spec_path, tmp_path)


class TestEmptyColumns:
    def test_columns_of_an_empty_run_is_an_empty_view(self, tmp_path):
        run = RunStore(tmp_path).create(parse_spec(SCENARIO_SPEC),
                                        run_id="fresh")
        columns = run.columns()
        assert len(columns) == 0
        assert columns.to_rows() == [] == run.rows()


class TestCompletedPointsVouch:
    """The resume fast-path: vouched shards are trusted from a stat().

    ``consolidate_columns`` reads every shard whole anyway, so it vouches
    for their ``(size, mtime_ns)`` signatures in ``columns.vouch.json``.
    ``completed_points()`` then skips opening any shard whose stat still
    matches — resume on a large mostly-complete run goes from N shard
    opens to only the uncovered/suspect ones.
    """

    def _count_reads(self, monkeypatch):
        reads = []
        real = runstore_module.read_row_shard
        monkeypatch.setattr(runstore_module, "read_row_shard",
                            lambda path: (reads.append(path), real(path))[1])
        return reads

    def test_completed_run_resume_opens_zero_shards(self, tmp_path,
                                                    monkeypatch):
        run = run_spec(parse_spec(SWEEP_SPEC), runs_dir=tmp_path)
        assert os.path.exists(run.vouch_path)
        reads = self._count_reads(monkeypatch)
        reopened = RunStore(tmp_path).open(run.run_id)
        assert reopened.completed_points() == set(range(6))
        assert reads == []

    def test_modified_shard_is_suspect_and_reopened(self, tmp_path,
                                                    monkeypatch):
        # Corrupt one shard in place: its stat signature no longer matches
        # the vouch, so it (and only it) pays a full open — which fails,
        # excluding it from the completed set.
        run = run_spec(parse_spec(SWEEP_SPEC), runs_dir=tmp_path)
        with open(run.shard_path(2), "wb") as handle:
            handle.write(b"disk corruption")
        reads = self._count_reads(monkeypatch)
        reopened = RunStore(tmp_path).open(run.run_id)
        assert reopened.completed_points() == set(range(6)) - {2}
        assert reads == [run.shard_path(2)]

    def test_missing_vouch_falls_back_to_full_scan(self, tmp_path,
                                                   monkeypatch):
        run = run_spec(parse_spec(SWEEP_SPEC), runs_dir=tmp_path)
        os.remove(run.vouch_path)
        reads = self._count_reads(monkeypatch)
        reopened = RunStore(tmp_path).open(run.run_id)
        assert reopened.completed_points() == set(range(6))
        assert len(reads) == 6  # no vouch: every shard verified whole

    def test_identity_mismatch_invalidates_whole_vouch(self, tmp_path,
                                                       monkeypatch):
        # A vouch written by a different spec/manifest must not be
        # trusted, even if the shard signatures happen to line up.
        run = run_spec(parse_spec(SWEEP_SPEC), runs_dir=tmp_path)
        with open(run.vouch_path) as handle:
            vouch = json.load(handle)
        vouch["identity"] = "0" * 16
        with open(run.vouch_path, "w") as handle:
            json.dump(vouch, handle)
        reads = self._count_reads(monkeypatch)
        reopened = RunStore(tmp_path).open(run.run_id)
        assert reopened.completed_points() == set(range(6))
        assert len(reads) == 6

    def test_partial_vouch_opens_only_uncovered_shards(self, tmp_path,
                                                       monkeypatch):
        run = run_spec(parse_spec(SWEEP_SPEC), runs_dir=tmp_path)
        with open(run.vouch_path) as handle:
            vouch = json.load(handle)
        for index in ("0", "3"):
            del vouch["shards"][index]
        with open(run.vouch_path, "w") as handle:
            json.dump(vouch, handle)
        reads = self._count_reads(monkeypatch)
        reopened = RunStore(tmp_path).open(run.run_id)
        assert reopened.completed_points() == set(range(6))
        assert sorted(reads) == [run.shard_path(0), run.shard_path(3)]

    def test_full_scan_refreshes_vouch_for_the_next_scan(self, tmp_path,
                                                         monkeypatch):
        # Shards a scan had to open whole are folded back into the vouch,
        # so the *second* status scan is free again.
        run = run_spec(parse_spec(SWEEP_SPEC), runs_dir=tmp_path)
        os.remove(run.vouch_path)
        first = self._count_reads(monkeypatch)
        assert RunStore(tmp_path).open(run.run_id).completed_points() \
            == set(range(6))
        assert len(first) == 6
        second = self._count_reads(monkeypatch)
        assert RunStore(tmp_path).open(run.run_id).completed_points() \
            == set(range(6))
        assert second == []

    def test_streamed_shards_verified_once_not_once_per_scan(self, tmp_path,
                                                             monkeypatch):
        # A run receiving remotely computed shards (a live distributed
        # sweep): each new shard pays one full open across repeated status
        # scans, not one per scan — so live counts are cheap *and* fresh.
        run = RunStore(tmp_path).create(parse_spec(SWEEP_SPEC),
                                        run_id="streamed")
        for index in range(4):
            run.write_point(index, {"x": float(index)})
        first = self._count_reads(monkeypatch)
        scan = RunStore(tmp_path).open("streamed")
        assert scan.completed_points() == set(range(4))
        assert len(first) == 4  # each streamed shard verified whole once
        run.write_point(4, {"x": 4.0})  # one more shard lands mid-run
        second = self._count_reads(monkeypatch)
        scan = RunStore(tmp_path).open("streamed")
        assert scan.completed_points() == set(range(5))
        assert second == [run.shard_path(4)]  # only the newcomer

    def test_unreadable_shard_is_never_vouched(self, tmp_path, monkeypatch):
        run = run_spec(parse_spec(SWEEP_SPEC), runs_dir=tmp_path)
        with open(run.shard_path(2), "wb") as handle:
            handle.write(b"disk corruption")
        for _ in range(2):  # suspect on every scan, not just the first
            reads = self._count_reads(monkeypatch)
            scan = RunStore(tmp_path).open(run.run_id)
            assert scan.completed_points() == set(range(6)) - {2}
            assert reads == [run.shard_path(2)]

    def test_vouch_file_never_changes_published_bytes(self, tmp_path):
        # The vouch is a cache hint, not data: the sidecar, the report and
        # the content digest are identical with and without it.
        run = run_spec(parse_spec(SWEEP_SPEC), runs_dir=tmp_path)
        with_vouch = (render_run_report(run), run.content_digest())
        os.remove(run.vouch_path)
        reopened = RunStore(tmp_path).open(run.run_id)
        assert (render_run_report(reopened),
                reopened.content_digest()) == with_vouch
