"""Tests for the resumable run store (:mod:`repro.runstore`).

The headline property — an interrupted run, resumed, produces
byte-identical reports to an uninterrupted run — is pinned twice: once by
stopping at a point boundary (``max_points``) and once by SIGKILLing a
real ``repro run`` subprocess mid-sweep.
"""

import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.reporting import render_run_report, write_run_report
from repro.runstore import (
    Run,
    RunStore,
    RunStoreError,
    read_row_shard,
    resume_run,
    run_spec,
    write_row_shard,
)
from repro.specs import parse_spec

SWEEP_SPEC = {
    "experiment": {"name": "rs-sweep", "kind": "sweep", "seed": 1,
                   "replications": 3},
    "sweep": {"lifespans": [100.0, 200.0, 300.0], "interrupts": [1],
              "schedulers": ["equalizing-adaptive", "single-period"],
              "adversaries": ["poisson-owner"], "optimal": True},
}

SCENARIO_SPEC = {
    "experiment": {"name": "rs-scenario", "kind": "scenario", "seed": 0,
                   "replications": 2, "backend": "batch"},
    "scenario": {"family": "laptop",
                 "schedulers": ["equalizing-adaptive", "fixed-period"]},
}


class TestShardRoundTrip:
    def test_scalars_round_trip(self, tmp_path):
        path = tmp_path / "row.npz"
        row = {"scheduler": "equalizing-adaptive", "lifespan": 100.0,
               "max_interrupts": 2, "optimal": True, "work_mean": 87.25}
        write_row_shard(path, row)
        back = read_row_shard(path)
        assert back == row
        assert isinstance(back["scheduler"], str)
        assert isinstance(back["max_interrupts"], int)
        assert isinstance(back["work_mean"], float)
        assert back["optimal"] is True

    def test_unstorable_values_rejected_at_write_time(self, tmp_path):
        # None becomes an object array, which np.load(allow_pickle=False)
        # could never read back — the shard would look corrupt forever and
        # the run could never complete.  Must fail on write, not on read.
        path = tmp_path / "row.npz"
        with pytest.raises(RunStoreError) as excinfo:
            write_row_shard(path, {"ok": 1.0, "bad": None})
        assert "bad" in str(excinfo.value)
        assert not path.exists()

    def test_write_is_atomic_no_tmp_left_behind(self, tmp_path):
        path = tmp_path / "row.npz"
        write_row_shard(path, {"x": 1})
        leftovers = [n for n in os.listdir(tmp_path) if n.endswith(".tmp")]
        assert leftovers == []

    def test_array_values_round_trip(self, tmp_path):
        path = tmp_path / "arr.npz"
        write_row_shard(path, {"trace": np.array([1.0, 2.0, 3.0]), "n": 3})
        back = read_row_shard(path)
        assert back["n"] == 3
        np.testing.assert_array_equal(back["trace"], [1.0, 2.0, 3.0])

    def test_corrupt_shard_raises(self, tmp_path):
        path = tmp_path / "bad.npz"
        path.write_bytes(b"this is not a zip archive")
        with pytest.raises(RunStoreError):
            read_row_shard(path)
        truncated = tmp_path / "trunc.npz"
        write_row_shard(truncated, {"x": np.arange(100)})
        data = truncated.read_bytes()
        truncated.write_bytes(data[: len(data) // 2])
        with pytest.raises(RunStoreError):
            read_row_shard(truncated)


class TestRunStore:
    def test_create_open_list(self, tmp_path):
        store = RunStore(tmp_path)
        spec = parse_spec(SCENARIO_SPEC)
        run = store.create(spec, run_id="r1")
        assert store.exists("r1")
        assert store.list_runs() == ["r1"]
        reopened = store.open("r1")
        assert reopened.spec() == spec
        assert reopened.num_points == 2
        assert reopened.status == "running"

    def test_open_missing_run_lists_known(self, tmp_path):
        store = RunStore(tmp_path)
        store.create(parse_spec(SCENARIO_SPEC), run_id="exists")
        with pytest.raises(RunStoreError) as excinfo:
            store.open("missing")
        assert "exists" in str(excinfo.value)

    def test_create_collision_rejected(self, tmp_path):
        store = RunStore(tmp_path)
        store.create(parse_spec(SCENARIO_SPEC), run_id="dup")
        with pytest.raises(RunStoreError):
            store.create(parse_spec(SCENARIO_SPEC), run_id="dup")

    def test_unreadable_manifest_raises(self, tmp_path):
        run_dir = tmp_path / "broken-run"
        run_dir.mkdir()
        (run_dir / "manifest.json").write_text("{not json")
        with pytest.raises(RunStoreError):
            _ = Run(str(run_dir)).manifest

    def test_list_runs_ignores_stray_entries(self, tmp_path):
        store = RunStore(tmp_path)
        store.create(parse_spec(SCENARIO_SPEC), run_id="real")
        (tmp_path / "not-a-run").mkdir()
        (tmp_path / "loose-file.txt").write_text("x")
        assert store.list_runs() == ["real"]
        assert RunStore(tmp_path / "nowhere").list_runs() == []

    def test_completed_points_skips_corrupt_shards(self, tmp_path):
        store = RunStore(tmp_path)
        run = store.create(parse_spec(SCENARIO_SPEC), run_id="c")
        run.write_point(0, {"x": 1.0})
        with open(run.shard_path(1), "wb") as handle:
            handle.write(b"torn write")
        assert run.completed_points() == {0}


class TestRunSpecExecution:
    def test_serial_and_parallel_rows_agree(self, tmp_path):
        spec = parse_spec(SWEEP_SPEC)
        serial = run_spec(spec, runs_dir=tmp_path / "a", jobs=1)
        parallel = run_spec(spec, runs_dir=tmp_path / "b", jobs=2)
        assert serial.status == "complete" == parallel.status
        assert serial.rows() == parallel.rows()

    def test_rerun_without_resume_flag_fails(self, tmp_path):
        spec = parse_spec(SCENARIO_SPEC)
        run_spec(spec, runs_dir=tmp_path)
        with pytest.raises(RunStoreError):
            run_spec(spec, runs_dir=tmp_path)

    def test_resume_refuses_a_different_spec(self, tmp_path):
        spec = parse_spec(SCENARIO_SPEC)
        run = run_spec(spec, runs_dir=tmp_path, max_points=1)
        other = parse_spec({**SCENARIO_SPEC,
                            "experiment": {**SCENARIO_SPEC["experiment"],
                                           "seed": 99}})
        with pytest.raises(RunStoreError):
            run_spec(other, runs_dir=tmp_path, run_id=run.run_id, resume=True)

    def test_resume_of_a_complete_run_is_a_noop(self, tmp_path):
        spec = parse_spec(SCENARIO_SPEC)
        run = run_spec(spec, runs_dir=tmp_path)
        before = run.rows()
        again = resume_run(run.run_id, runs_dir=tmp_path, jobs=0)
        assert again.status == "complete"
        assert again.rows() == before

    def test_max_points_checkpointing(self, tmp_path):
        spec = parse_spec(SWEEP_SPEC)
        run = run_spec(spec, runs_dir=tmp_path, max_points=2)
        assert run.status == "running"
        assert run.completed_points() == {0, 1}
        run = resume_run(run.run_id, runs_dir=tmp_path, max_points=2)
        assert run.completed_points() == {0, 1, 2, 3}
        run = resume_run(run.run_id, runs_dir=tmp_path)
        assert run.status == "complete"
        assert len(run.rows()) == 6

    def test_interrupted_then_resumed_report_is_byte_identical(self, tmp_path):
        spec = parse_spec(SWEEP_SPEC)
        # Uninterrupted reference run.
        full = run_spec(spec, runs_dir=tmp_path / "full")
        # Interrupted at a point boundary, then resumed.
        broken = run_spec(spec, runs_dir=tmp_path / "broken", max_points=3)
        assert broken.status == "running"
        resumed = resume_run(broken.run_id, runs_dir=tmp_path / "broken")
        assert resumed.status == "complete"
        assert resumed.rows() == full.rows()
        assert render_run_report(resumed) == render_run_report(full)

    def test_resume_recomputes_a_corrupted_point(self, tmp_path):
        spec = parse_spec(SWEEP_SPEC)
        run = run_spec(spec, runs_dir=tmp_path)
        reference = run.rows()
        with open(run.shard_path(2), "wb") as handle:
            handle.write(b"disk corruption")
        resumed = resume_run(run.run_id, runs_dir=tmp_path)
        assert resumed.rows() == reference

    def test_scenario_spec_runs_and_reports(self, tmp_path):
        spec = parse_spec(SCENARIO_SPEC)
        run = run_spec(spec, runs_dir=tmp_path)
        report = render_run_report(run)
        assert "# Run report: rs-scenario" in report
        assert "`laptop`" in report
        assert "Monte-Carlo replication" in report
        path = write_run_report(run)
        assert os.path.exists(path)
        assert open(path).read() == report

    def test_partial_run_report_says_so(self, tmp_path):
        spec = parse_spec(SWEEP_SPEC)
        run = run_spec(spec, runs_dir=tmp_path, max_points=1)
        report = render_run_report(run)
        assert "partial run" in report
        assert f"repro resume {run.run_id}" in report


class TestKillResume:
    """A real mid-run kill: SIGKILL the CLI subprocess, then resume."""

    SPEC_TOML = """\
[experiment]
name = "kill-test"
kind = "scenario"
seed = 0
replications = 30
backend = "event"

[scenario]
family = "laptop"
schedulers = ["equalizing-adaptive", "rosenberg-adaptive", "fixed-period", "single-period", "equal-split", "geometric"]
"""

    def _reference_report(self, spec_path, tmp_path):
        from repro.specs import load_spec

        # Same run id (in a separate store) so the reports can be compared
        # byte for byte, header included.
        run = run_spec(load_spec(spec_path), runs_dir=tmp_path / "ref",
                       run_id="victim")
        return render_run_report(run)

    def test_sigkill_mid_run_then_resume_matches(self, tmp_path):
        # Bounded internally: the poll loop gives up after 120 s and the
        # subprocess wait after 60 s, so no pytest-timeout mark is needed.
        spec_path = tmp_path / "kill.toml"
        spec_path.write_text(self.SPEC_TOML)
        runs_dir = tmp_path / "runs"
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep \
            + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "run", str(spec_path),
             "--runs-dir", str(runs_dir), "--run-id", "victim"],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        try:
            # Kill as soon as at least one point has been persisted (the
            # interesting window); if the run wins the race and finishes,
            # resume below degrades to a no-op — the equality still holds.
            points_dir = runs_dir / "victim" / "points"
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline and proc.poll() is None:
                if points_dir.is_dir() and any(points_dir.glob("point-*.npz")):
                    break
                time.sleep(0.02)
            killed = proc.poll() is None
            if killed:
                proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=60)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup on failure
                proc.kill()
                proc.wait()

        run = Run(str(runs_dir / "victim"))
        completed_before = run.completed_points()
        if killed:
            assert run.status == "running"
            assert len(completed_before) < 6
        resumed = resume_run("victim", runs_dir=runs_dir)
        assert resumed.status == "complete"
        assert resumed.completed_points() == set(range(6))
        assert render_run_report(resumed) \
            == self._reference_report(spec_path, tmp_path)
