"""Unit and property tests for the work-accounting layer (Section 2.2)."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CycleStealingParams, EpisodeSchedule, PeriodEndInterrupts, TimedInterrupts
from repro.core.work import (
    episode_elapsed,
    episode_work,
    nonadaptive_opportunity_work,
    nonadaptive_work_under_times,
    worst_case_nonadaptive_pattern,
    worst_case_nonadaptive_work,
)


class TestEpisodeWork:
    def test_uninterrupted(self):
        s = EpisodeSchedule([3.0, 2.0])
        assert episode_work(s, 1.0) == pytest.approx(3.0)
        assert episode_elapsed(s) == pytest.approx(5.0)

    def test_interrupt_in_first_period(self):
        s = EpisodeSchedule([3.0, 2.0])
        assert episode_work(s, 1.0, interrupt_time=2.5) == 0.0
        assert episode_elapsed(s, 2.5) == 2.5

    def test_interrupt_in_second_period(self):
        s = EpisodeSchedule([3.0, 2.0])
        assert episode_work(s, 1.0, interrupt_time=3.0) == pytest.approx(2.0)
        assert episode_work(s, 1.0, interrupt_time=4.999) == pytest.approx(2.0)

    def test_interrupt_after_episode_is_no_interrupt(self):
        s = EpisodeSchedule([3.0, 2.0])
        assert episode_work(s, 1.0, interrupt_time=5.0) == pytest.approx(3.0)
        assert episode_elapsed(s, 5.0) == pytest.approx(5.0)

    def test_negative_interrupt_rejected(self):
        s = EpisodeSchedule([3.0])
        with pytest.raises(Exception):
            episode_work(s, 1.0, interrupt_time=-1.0)

    @given(st.lists(st.floats(min_value=0.5, max_value=50.0), min_size=1, max_size=15),
           st.floats(min_value=0.0, max_value=3.0),
           st.floats(min_value=0.0, max_value=0.999))
    def test_interrupt_never_increases_work(self, lengths, c, frac):
        s = EpisodeSchedule(lengths)
        t = frac * s.total_length
        assert episode_work(s, c, t) <= episode_work(s, c) + 1e-9


def brute_force_worst_case(schedule, params):
    """Enumerate every period-end interrupt pattern (small instances only)."""
    best = schedule.work_if_uninterrupted(params.setup_cost)
    m = schedule.num_periods
    for count in range(1, params.max_interrupts + 1):
        for combo in itertools.combinations(range(1, m + 1), count):
            work = nonadaptive_opportunity_work(schedule, params, PeriodEndInterrupts(combo))
            best = min(best, work)
    return best


class TestNonAdaptiveOpportunityWork:
    def _params(self, U, p, c=1.0):
        return CycleStealingParams(lifespan=U, setup_cost=c, max_interrupts=p)

    def test_no_interrupts(self):
        s = EpisodeSchedule([4.0, 4.0, 2.0])
        params = self._params(10.0, 2)
        work = nonadaptive_opportunity_work(s, params, PeriodEndInterrupts())
        assert work == pytest.approx(3.0 + 3.0 + 1.0)

    def test_partial_budget_drops_killed_periods(self):
        s = EpisodeSchedule([4.0, 4.0, 2.0])
        params = self._params(10.0, 2)
        work = nonadaptive_opportunity_work(s, params, PeriodEndInterrupts([1]))
        assert work == pytest.approx(3.0 + 1.0)

    def test_budget_exhausted_triggers_long_tail(self):
        s = EpisodeSchedule([4.0, 4.0, 2.0])
        params = self._params(10.0, 1)
        # One interrupt (the whole budget) at period 1: tail = 10 - 4 = 6 as
        # one long period -> 5 units of work.
        work = nonadaptive_opportunity_work(s, params, PeriodEndInterrupts([1]))
        assert work == pytest.approx(5.0)

    def test_paper_formula_matches_manual(self):
        # W(S) = sum_{k not in I} (t_k - c) + (U - T_{i_p} - c)
        s = EpisodeSchedule([5.0, 5.0, 5.0, 5.0])
        params = self._params(20.0, 2)
        work = nonadaptive_opportunity_work(s, params, PeriodEndInterrupts([2, 3]))
        expected = (5.0 - 1.0) + ((20.0 - 15.0) - 1.0)
        assert work == pytest.approx(expected)

    def test_interrupting_last_period_with_full_budget(self):
        s = EpisodeSchedule([5.0, 5.0])
        params = self._params(10.0, 1)
        work = nonadaptive_opportunity_work(s, params, PeriodEndInterrupts([2]))
        assert work == pytest.approx(4.0)

    def test_budget_violation_rejected(self):
        s = EpisodeSchedule([5.0, 5.0])
        params = self._params(10.0, 1)
        with pytest.raises(Exception):
            nonadaptive_opportunity_work(s, params, PeriodEndInterrupts([1, 2]))

    def test_schedule_must_cover_lifespan(self):
        s = EpisodeSchedule([5.0])
        params = self._params(10.0, 1)
        with pytest.raises(Exception):
            nonadaptive_opportunity_work(s, params, PeriodEndInterrupts())


class TestWorstCaseNonAdaptive:
    def _params(self, U, p, c=1.0):
        return CycleStealingParams(lifespan=U, setup_cost=c, max_interrupts=p)

    @pytest.mark.parametrize("lengths,p", [
        ([4.0, 4.0, 2.0], 1),
        ([4.0, 4.0, 2.0], 2),
        ([5.0, 5.0, 5.0, 5.0], 2),
        ([1.5, 8.0, 0.5, 3.0, 7.0], 2),
        ([2.0] * 8, 3),
        ([10.0, 1.0, 1.0, 1.0, 1.0, 6.0], 3),
    ])
    def test_matches_brute_force(self, lengths, p):
        s = EpisodeSchedule(lengths)
        params = self._params(s.total_length, p)
        fast = worst_case_nonadaptive_work(s, params)
        brute = brute_force_worst_case(s, params)
        assert fast == pytest.approx(brute, abs=1e-9)

    def test_pattern_evaluates_to_reported_work(self):
        s = EpisodeSchedule([3.0, 6.0, 2.0, 5.0, 4.0])
        params = self._params(s.total_length, 2)
        pattern, work = worst_case_nonadaptive_pattern(s, params)
        assert nonadaptive_opportunity_work(s, params, pattern) == pytest.approx(work)

    def test_zero_budget(self):
        s = EpisodeSchedule([3.0, 6.0])
        params = self._params(9.0, 0)
        pattern, work = worst_case_nonadaptive_pattern(s, params)
        assert pattern.is_empty
        assert work == pytest.approx(s.work_if_uninterrupted(1.0))

    def test_single_period_schedule_with_interrupt_budget(self):
        s = EpisodeSchedule([10.0])
        params = self._params(10.0, 1)
        assert worst_case_nonadaptive_work(s, params) == 0.0

    @settings(deadline=None, max_examples=60)
    @given(st.lists(st.floats(min_value=0.5, max_value=20.0), min_size=1, max_size=7),
           st.integers(min_value=0, max_value=3),
           st.floats(min_value=0.0, max_value=2.0))
    def test_property_matches_brute_force(self, lengths, p, c):
        s = EpisodeSchedule(lengths)
        params = CycleStealingParams(lifespan=s.total_length, setup_cost=c, max_interrupts=p)
        fast = worst_case_nonadaptive_work(s, params)
        brute = brute_force_worst_case(s, params)
        assert fast == pytest.approx(brute, abs=1e-6)

    @settings(deadline=None, max_examples=40)
    @given(st.lists(st.floats(min_value=0.5, max_value=20.0), min_size=1, max_size=10),
           st.integers(min_value=0, max_value=3))
    def test_worst_case_never_exceeds_uninterrupted(self, lengths, p):
        s = EpisodeSchedule(lengths)
        params = CycleStealingParams(lifespan=s.total_length, setup_cost=1.0, max_interrupts=p)
        assert worst_case_nonadaptive_work(s, params) <= s.work_if_uninterrupted(1.0) + 1e-9


class TestWorkUnderTimes:
    def _params(self, U, p, c=1.0):
        return CycleStealingParams(lifespan=U, setup_cost=c, max_interrupts=p)

    def test_no_interrupts_matches_uninterrupted(self):
        s = EpisodeSchedule([4.0, 4.0, 2.0])
        params = self._params(10.0, 2)
        work = nonadaptive_work_under_times(s, params, TimedInterrupts())
        assert work == pytest.approx(s.work_if_uninterrupted(1.0))

    def test_agrees_with_period_end_formula_on_last_instants(self):
        s = EpisodeSchedule([4.0, 4.0, 2.0])
        eps = 1e-9
        # Budget not exhausted: a single last-instant kill of period 1.
        params = self._params(10.0, 2)
        assert nonadaptive_work_under_times(s, params, TimedInterrupts([4.0 - eps])) == \
            pytest.approx(nonadaptive_opportunity_work(s, params, PeriodEndInterrupts([1])),
                          abs=1e-6)
        # Budget exhausted (p = 1): the remainder runs as one long period.
        params1 = self._params(10.0, 1)
        assert nonadaptive_work_under_times(s, params1, TimedInterrupts([4.0 - eps])) == \
            pytest.approx(nonadaptive_opportunity_work(s, params1, PeriodEndInterrupts([1])),
                          abs=1e-6)

    def test_mid_period_interrupt_then_tail(self):
        s = EpisodeSchedule([4.0, 4.0, 2.0])
        params = self._params(10.0, 2)
        work = nonadaptive_work_under_times(s, params, TimedInterrupts([2.0]))
        # Period 1 killed at t=2; tail periods (4, 2) run from t=2, finishing
        # at t=8; the extension covers [8, 10) as one extra period.
        assert work == pytest.approx(3.0 + 1.0 + 1.0)

    def test_budget_exhaustion_long_period(self):
        s = EpisodeSchedule([4.0, 4.0, 2.0])
        params = self._params(10.0, 1)
        work = nonadaptive_work_under_times(s, params, TimedInterrupts([2.0]))
        # Budget exhausted after the kill at t=2: remainder is 8 long -> 7.
        assert work == pytest.approx(7.0)

    def test_extend_final_period_flag(self):
        s = EpisodeSchedule([4.0])
        params = self._params(10.0, 0)
        with_ext = nonadaptive_work_under_times(s, params, TimedInterrupts())
        without = nonadaptive_work_under_times(s, params, TimedInterrupts(),
                                               extend_final_period=False)
        assert with_ext == pytest.approx(3.0 + 5.0)
        assert without == pytest.approx(3.0)
