"""Property tests for the streaming accumulators.

The contracts pinned here are what lets the chunked Monte-Carlo pipeline
claim "chunking is a memory knob, never a results knob":

* :class:`RunningMoments` is **bit-identical under any chunking** of the
  same stream, its min/max are exact, and Welford mean/std agree with
  numpy's pairwise reductions to far better than the 1e-9 the parity CI
  gates pin;
* :class:`P2Quantile` is bit-identical under any chunking, exact below
  five observations, and a bounded-error estimate of ``np.quantile``
  above;
* :class:`StreamingAggregator` emits the same columns as the exact
  ``aggregate`` (with monotone quantile estimates) and both reject NaN
  with an actionable error instead of poisoning the running state.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.montecarlo import aggregate
from repro.experiments.streaming import (
    P2Quantile,
    RunningMoments,
    StreamingAggregator,
)

#: Finite, moderately-scaled values: the accumulators' contracts are about
#: summation order, not about surviving 1e308 overflow.
finite_values = st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False, allow_infinity=False)


def chunked(draw_boundaries, values):
    """Split ``values`` into the chunks encoded by a list of cut points."""
    cuts = sorted({b % (len(values) + 1) for b in draw_boundaries})
    pieces = []
    previous = 0
    for cut in cuts + [len(values)]:
        if cut > previous:
            pieces.append(values[previous:cut])
            previous = cut
    return pieces


class TestRunningMoments:
    @given(values=st.lists(finite_values, min_size=1, max_size=60),
           boundaries=st.lists(st.integers(min_value=0, max_value=60),
                               max_size=6))
    def test_bit_identical_under_any_chunking(self, values, boundaries):
        one_by_one = RunningMoments("x")
        for value in values:
            one_by_one.update(value)
        in_chunks = RunningMoments("x")
        for piece in chunked(boundaries, values):
            in_chunks.extend(piece)
        assert in_chunks.count == one_by_one.count
        assert in_chunks.mean == one_by_one.mean
        assert in_chunks.std == one_by_one.std
        assert in_chunks.minimum == one_by_one.minimum
        assert in_chunks.maximum == one_by_one.maximum

    @given(values=st.lists(finite_values, min_size=1, max_size=200))
    def test_matches_numpy(self, values):
        moments = RunningMoments()
        moments.extend(values)
        arr = np.asarray(values, dtype=float)
        assert moments.count == arr.size
        assert moments.minimum == float(arr.min())
        assert moments.maximum == float(arr.max())
        scale = max(1.0, abs(float(arr.mean())))
        assert abs(moments.mean - float(arr.mean())) <= 1e-9 * scale
        expected_std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
        assert abs(moments.std - expected_std) <= 1e-9 * max(1.0, expected_std)

    def test_single_value_std_is_pinned_zero(self):
        moments = RunningMoments()
        moments.update(3.5)
        assert moments.std == 0.0
        assert moments.mean == 3.5
        assert moments.minimum == moments.maximum == 3.5

    def test_rejects_nan(self):
        moments = RunningMoments("work")
        with pytest.raises(ValueError, match="NaN"):
            moments.update(float("nan"))
        moments.extend([1.0, 2.0])
        with pytest.raises(ValueError, match="'work'"):
            moments.extend([3.0, float("nan")])


class TestP2Quantile:
    @given(values=st.lists(finite_values, min_size=1, max_size=60),
           boundaries=st.lists(st.integers(min_value=0, max_value=60),
                               max_size=6),
           q=st.sampled_from([0.1, 0.5, 0.9]))
    def test_bit_identical_under_any_chunking(self, values, boundaries, q):
        one_by_one = P2Quantile(q)
        for value in values:
            one_by_one.update(value)
        in_chunks = P2Quantile(q)
        for piece in chunked(boundaries, values):
            in_chunks.extend(piece)
        assert in_chunks.count == one_by_one.count
        assert in_chunks.value() == one_by_one.value()

    @given(values=st.lists(finite_values, min_size=1, max_size=4),
           q=st.sampled_from([0.1, 0.5, 0.9]))
    def test_exact_below_five_observations(self, values, q):
        estimator = P2Quantile(q)
        estimator.extend(values)
        assert estimator.value() == float(np.quantile(np.asarray(values), q))

    @settings(max_examples=30)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1),
           size=st.integers(min_value=50, max_value=500),
           q=st.sampled_from([0.1, 0.5, 0.9]),
           distribution=st.sampled_from(["uniform", "exponential", "normal"]))
    def test_estimate_tracks_numpy_quantile(self, seed, size, q, distribution):
        rng = np.random.default_rng(seed)
        if distribution == "uniform":
            data = rng.uniform(0.0, 100.0, size)
        elif distribution == "exponential":
            data = rng.exponential(10.0, size)
        else:
            data = rng.normal(50.0, 15.0, size)
        estimator = P2Quantile(q)
        estimator.extend(data)
        exact = float(np.quantile(data, q))
        span = float(data.max() - data.min())
        # P² is an O(1)-memory estimator, not an exact quantile: on these
        # well-behaved distributions its error stays a small fraction of
        # the data range (typically <2%; 15% asserted for tail safety).
        assert abs(estimator.value() - exact) <= 0.15 * span + 1e-12

    def test_validates_quantile_and_rejects_nan(self):
        with pytest.raises(ValueError, match="quantile"):
            P2Quantile(1.5)
        estimator = P2Quantile(0.5, "work")
        with pytest.raises(ValueError, match="NaN"):
            estimator.update(float("nan"))
        with pytest.raises(ValueError, match="no observations"):
            P2Quantile(0.5).value()


class TestStreamingAggregator:
    @given(values=st.lists(finite_values, min_size=1, max_size=40),
           boundaries=st.lists(st.integers(min_value=0, max_value=40),
                               max_size=5))
    def test_same_columns_as_exact_aggregate(self, values, boundaries):
        aggregator = StreamingAggregator("work")
        for piece in chunked(boundaries, values):
            aggregator.extend(piece)
        summary = aggregator.summary("work")
        exact = aggregate(values, "work")
        assert set(summary) == set(exact)
        assert summary["work_n"] == exact["work_n"]
        assert summary["work_min"] == exact["work_min"]
        assert summary["work_max"] == exact["work_max"]
        for key in ("work_mean", "work_std"):
            assert abs(summary[key] - exact[key]) \
                <= 1e-9 * max(1.0, abs(exact[key]))

    @given(values=st.lists(finite_values, min_size=1, max_size=200))
    def test_quantile_estimates_are_monotone(self, values):
        aggregator = StreamingAggregator("work", quantiles=(0.1, 0.5, 0.9))
        aggregator.extend(values)
        summary = aggregator.summary("work")
        assert summary["work_q10"] <= summary["work_q50"] <= summary["work_q90"]
        assert math.isfinite(summary["work_q50"])

    @given(values=st.lists(finite_values, min_size=1, max_size=4))
    def test_quantiles_exact_below_five_observations(self, values):
        aggregator = StreamingAggregator("work")
        aggregator.extend(values)
        summary = aggregator.summary("work")
        exact = aggregate(values, "work")
        # Below five observations the P² estimators just sort their buffer,
        # so the quantile columns equal the exact path bit for bit (Welford
        # mean/std may differ in the last ULP and are covered above).
        for key in ("work_q10", "work_q50", "work_q90", "work_min",
                    "work_max", "work_n"):
            assert summary[key] == exact[key]

    def test_empty_summary(self):
        assert StreamingAggregator("work").summary("work") == {"work_n": 0}

    def test_rejects_nan(self):
        aggregator = StreamingAggregator("work")
        aggregator.extend([1.0, 2.0])
        with pytest.raises(ValueError, match="NaN"):
            aggregator.extend([float("nan")])
        with pytest.raises(ValueError, match="NaN"):
            aggregator.update(float("nan"))
